#include "src/serve/server.h"

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <thread>
#include <utility>

#include "src/core/method_registry.h"
#include "src/od/detector.h"
#include "src/util/fault.h"
#include "src/util/logging.h"

namespace grgad {
namespace {

/// Best-effort request id from a line whose full validation failed, so the
/// error response still correlates (-1 when even that much is unreadable).
int64_t SalvageRequestId(const std::string& line) {
  auto parsed = ParseJsonText(line);
  if (!parsed.ok()) return -1;
  const JsonValue* id = parsed.value().Find("id");
  if (id == nullptr || id->kind != JsonValue::Kind::kNumber ||
      id->number != std::floor(id->number) || id->number < 0) {
    return -1;
  }
  return static_cast<int64_t>(id->number);
}

bool BlankLine(const std::string& line) {
  return line.find_first_not_of(" \t\r") == std::string::npos;
}

}  // namespace

ServeDaemon::ServeDaemon(const Graph& graph, PipelineArtifacts artifacts,
                         ServeOptions options)
    : graph_(&graph),
      artifacts_(std::move(artifacts)),
      options_(std::move(options)),
      dynamic_(graph),
      metrics_(options_.max_queue) {
  tracker_.Reset(artifacts_.anchors,
                 InvalidationRadius(options_.pipeline.sampler),
                 graph.num_nodes());
}

void ServeDaemon::Prewarm() {
  PrewarmPipelineState(*graph_, options_.pipeline);
}

int ServeDaemon::MarkAllAnchors() {
  tracker_.MarkAll();
  return static_cast<int>(tracker_.num_anchors());
}

bool ServeDaemon::ApplyEdgeMutation(bool add, int u, int v, int* fanout) {
  *fanout = 0;
  const bool sound = IncrementalInvalidationSound(options_.pipeline.sampler);
  if (add) {
    // Mark AFTER applying: the post-add balls cover every distance that
    // shrank through the new edge.
    const bool applied = dynamic_.AddEdge(u, v);
    if (applied) {
      *fanout = sound ? tracker_.MarkFromEdge(dynamic_, u, v)
                      : MarkAllAnchors();
    }
    return applied;
  }
  if (!dynamic_.HasEdge(u, v)) return false;
  // Mark BEFORE applying: the pre-remove balls still reach through the
  // edge about to disappear.
  *fanout = sound ? tracker_.MarkFromEdge(dynamic_, u, v) : MarkAllAnchors();
  return dynamic_.RemoveEdge(u, v);
}

Status ServeDaemon::ReplayWalRecord(const WalRecord& record) {
  switch (record.kind) {
    case WalRecord::Kind::kMutation: {
      const GraphMutation& m = record.mutation;
      if (m.kind != GraphMutation::Kind::kAddEdge &&
          m.kind != GraphMutation::Kind::kRemoveEdge) {
        return Status::DataLoss("wal replay: unsupported mutation kind at seq " +
                                std::to_string(record.seq));
      }
      int fanout = 0;
      ApplyEdgeMutation(m.kind == GraphMutation::Kind::kAddEdge, m.u, m.v,
                        &fanout);
      return Status::Ok();
    }
    case WalRecord::Kind::kRefresh: {
      const std::vector<int> dirty = tracker_.TakeDirtyIndices();
      Status status = RefreshArtifacts(dynamic_.PackedView(),
                                       options_.pipeline, dirty,
                                       &refresh_state_, &artifacts_);
      if (!status.ok()) tracker_.MarkAll();
      return status;
    }
    case WalRecord::Kind::kCompact: {
      dynamic_.Compact();
      return Status::Ok();
    }
  }
  return Status::Internal("wal replay: unreachable record kind");
}

Status ServeDaemon::EnableDurability(const LoadedServeSnapshot* snapshot) {
  if (options_.state_dir.empty()) {
    return Status::InvalidArgument(
        "EnableDurability requires ServeOptions::state_dir");
  }
  std::error_code ec;
  std::filesystem::create_directories(
      std::filesystem::path(options_.state_dir), ec);
  if (ec) {
    return Status::IoError("cannot create state dir " + options_.state_dir +
                           ": " + ec.message());
  }
  uint64_t base = 0;
  if (snapshot != nullptr) {
    // The caller already seeded the constructor with the snapshot's graph
    // and artifacts; what remains is the serving state around them.
    if (snapshot->state.all_dirty) {
      tracker_.MarkAll();
    } else {
      for (int index : snapshot->state.dirty_anchor_indices) {
        tracker_.MarkIndex(index);
      }
    }
    refresh_state_.primed = snapshot->state.refresh_primed;
    refresh_state_.per_anchor = snapshot->state.refresh_per_anchor;
    base = snapshot->wal_seq;
  }
  auto wal = WriteAheadLog::Open(
      (std::filesystem::path(options_.state_dir) / "wal.log").string(),
      options_.pipeline.serve_wal_sync_every);
  if (!wal.ok()) return wal.status();
  wal_ = std::move(wal.value());
  // Replay the tail above the snapshot's high-water mark through the same
  // apply/mark/refresh path live traffic takes; records at or below it are
  // already folded into the snapshot (the crash-before-truncate window).
  size_t replayed = 0;
  for (const WalRecord& record : wal_->records()) {
    if (record.seq <= base) continue;
    GRGAD_RETURN_IF_ERROR(ReplayWalRecord(record));
    ++replayed;
  }
  if (wal_->last_seq() < base) {
    // The WAL lost records the snapshot already covers (torn tail below
    // the high-water mark): reset so appends continue above the snapshot.
    GRGAD_RETURN_IF_ERROR(wal_->ResetTo(base));
  }
  metrics_.RecordRecovery(replayed, wal_->open_stats().truncated_records,
                          wal_->open_stats().truncation_note);
  metrics_.SetDurabilityEnabled(true);
  if (replayed > 0 || wal_->open_stats().truncated_records > 0) {
    GRGAD_LOG(kInfo) << "serve: recovered " << replayed
                     << " WAL record(s) above snapshot seq " << base
                     << " (dropped "
                     << wal_->open_stats().truncated_records
                     << " torn tail record(s))";
  }
  return Status::Ok();
}

Status ServeDaemon::SnapshotNow() {
  if (wal_ == nullptr) {
    return Status::FailedPrecondition(
        "snapshot requires a daemon started with --state-dir");
  }
  ServeStateSnapshot state;
  state.all_dirty = tracker_.all_dirty();
  state.dirty_anchor_indices = tracker_.PeekDirtyIndices();
  state.refresh_primed = refresh_state_.primed;
  if (refresh_state_.primed) {
    state.refresh_per_anchor = refresh_state_.per_anchor;
  }
  const uint64_t seq = wal_->last_seq();
  // Unsynced appends must be durable before a snapshot claims to cover
  // them: the snapshot commit is the new recovery floor.
  GRGAD_RETURN_IF_ERROR(wal_->Sync());
  GRGAD_RETURN_IF_ERROR(SaveServeSnapshot(options_.state_dir,
                                          dynamic_.PackedView(), artifacts_,
                                          state, seq));
  metrics_.RecordSnapshot(seq);
  // The kill window between a committed snapshot and the WAL truncation:
  // recovery must skip replaying records the snapshot already covers.
  (void)FaultInjector::Global().Fires("snapshot/post-pre-truncate");
  GRGAD_RETURN_IF_ERROR(wal_->ResetTo(seq));
  mutations_since_snapshot_ = 0;
  return Status::Ok();
}

void ServeDaemon::MaybeSnapshot() {
  if (wal_ == nullptr) return;
  const int cadence = options_.pipeline.serve_snapshot_every_mutations;
  if (cadence <= 0) return;
  ++mutations_since_snapshot_;
  if (mutations_since_snapshot_ < static_cast<uint64_t>(cadence)) return;
  // Reset the counter even on failure so a persistently failing snapshot
  // retries at the next cadence instead of after every mutation.
  mutations_since_snapshot_ = 0;
  if (Status status = SnapshotNow(); !status.ok()) {
    // Degradation, not failure: the WAL still covers the whole session.
    metrics_.RecordDurabilityError(status);
    GRGAD_LOG(kWarning) << "serve: snapshot failed (WAL still covers the "
                           "session): " << status.ToString();
  }
}

std::string ServeDaemon::MetricsJson() const {
  RequestQueue* queue = live_queue_.load(std::memory_order_acquire);
  return metrics_.SnapshotJson(queue != nullptr ? queue->depth() : 0, &arena_);
}

Status ServeDaemon::Serve(LineChannel* channel, const CancelToken& stop) {
  RequestQueue queue(options_.max_queue);
  live_queue_.store(&queue, std::memory_order_release);
  std::thread executor([&] { ExecuteLoop(&queue, channel); });

  Status transport = Status::Ok();
  std::string line;
  bool eof = false;
  while (!shutdown_requested()) {
    transport = channel->ReadLine(&line, &eof, &stop);
    if (!transport.ok() || eof) break;
    if (BlankLine(line)) continue;

    auto parsed = ParseServeRequest(line);
    if (!parsed.ok()) {
      metrics_.RecordReject();
      (void)channel->WriteLine(
          RenderErrorResponse(SalvageRequestId(line), "invalid",
                              parsed.status()));
      continue;
    }
    ServeRequest request = std::move(parsed).value();
    const int64_t id = request.id;
    const ServeOp op = request.op;

    if (Status fault = FaultInjector::Global().Check(
            "serve/admit", StatusCode::kResourceExhausted);
        !fault.ok()) {
      metrics_.RecordReject();
      (void)channel->WriteLine(RenderErrorResponse(id, op, fault));
      continue;
    }
    if (!queue.Admit(std::move(request))) {
      metrics_.RecordReject();
      (void)channel->WriteLine(RenderErrorResponse(
          id, op,
          Status::ResourceExhausted(
              "queue full (capacity " + std::to_string(queue.capacity()) +
              ")")));
      continue;
    }
    metrics_.RecordAdmit(queue.depth());
    // Shutdown stops reading immediately; everything already admitted —
    // including the shutdown request itself, which is what flips the flag
    // and emits the acknowledgement — still drains in order.
    if (op == ServeOp::kShutdown) break;
  }

  queue.Close();
  executor.join();
  live_queue_.store(nullptr, std::memory_order_release);
  return transport;
}

void ServeDaemon::ExecuteLoop(RequestQueue* queue, LineChannel* channel) {
  std::vector<PendingRequest> batch;
  while (queue->DrainBatch(&batch)) {
    Timer batch_timer;
    for (PendingRequest& pending : batch) {
      Status status;
      std::vector<StageTiming> timings;
      const std::string response = Execute(pending.request, &status, &timings);
      // A dead peer must not abort the drain: execution is side-effect-free
      // per request, so finishing the batch just discards undeliverable
      // responses.
      const Status written = channel->WriteLine(response);
      if (!written.ok()) {
        GRGAD_LOG(kWarning) << "serve: dropping response for request "
                            << pending.request.id << ": "
                            << written.ToString();
      }
      metrics_.RecordRequest(ServeOpName(pending.request.op), status,
                             pending.queued.ElapsedSeconds(), timings);
    }
    metrics_.RecordBatch(batch.size(), batch.size(),
                         batch_timer.ElapsedSeconds());
    batch.clear();
  }
}

std::string ServeDaemon::Execute(const ServeRequest& request,
                                 Status* status_out,
                                 std::vector<StageTiming>* timings_out) {
  Status status = Status::Ok();
  std::string response;
  RunContext ctx;
  // Sub-stage telemetry is free detail for the metrics timeline; it never
  // reaches responses, so turning it on cannot perturb response bytes.
  ctx.profile = true;
  const double timeout = request.timeout_seconds > 0.0
                             ? request.timeout_seconds
                             : options_.default_timeout_seconds;
  if (timeout > 0.0) ctx.SetDeadlineAfter(timeout);

  if (Status fault =
          FaultInjector::Global().Check("serve/execute", StatusCode::kInternal);
      !fault.ok()) {
    status = fault;
    response = RenderErrorResponse(request.id, request.op, fault);
  } else {
    switch (request.op) {
      case ServeOp::kAnchorScore: {
        TpGrGadOptions options = options_.pipeline;
        status = ApplyTpGrGadOverrides(&options, request.overrides);
        if (!status.ok()) {
          response = RenderErrorResponse(request.id, request.op, status);
          break;
        }
        // Resident warm state: recycle training buffers across requests.
        // Value-neutral by the arena contract (memory, never values), so
        // responses stay bitwise identical to an arena-less sequential run.
        options.mh_gae.base.arena = &arena_;
        options.tpgcl.arena = &arena_;
        // The live view: before any mutation PackedView() is the cached
        // host graph, after mutations it is the canonical repacked CSR.
        auto result = RunPipeline(dynamic_.PackedView(), options, &ctx);
        if (!result.ok()) {
          status = result.status();
          response = RenderErrorResponse(request.id, request.op, status);
          break;
        }
        response =
            RenderAnchorScoreResponse(request.id, result.value(), request.top);
        break;
      }
      case ServeOp::kRescore: {
        DetectorKind kind;
        if (!ParseDetectorKind(request.detector, &kind)) {
          status = Status::InvalidArgument("unknown detector '" +
                                           request.detector + "'");
          response = RenderErrorResponse(request.id, request.op, status);
          break;
        }
        const uint64_t seed =
            request.has_seed ? request.seed : artifacts_.seed;
        auto result = RescoreArtifacts(artifacts_, kind, seed, &ctx);
        if (!result.ok()) {
          status = result.status();
          response = RenderErrorResponse(request.id, request.op, status);
          break;
        }
        response = RenderScoredGroupsResponse(
            request.id, request.op, result.value().scored_groups, request.top);
        break;
      }
      case ServeOp::kWhatIf: {
        DetectorKind kind = options_.pipeline.detector;
        if (!request.detector.empty() &&
            !ParseDetectorKind(request.detector, &kind)) {
          status = Status::InvalidArgument("unknown detector '" +
                                           request.detector + "'");
          response = RenderErrorResponse(request.id, request.op, status);
          break;
        }
        // Filter resident candidate groups (sorted node lists) and slice
        // their embedding rows; the scoring stage then runs exactly as a
        // sequential RunScoringStage over the same subset would.
        std::vector<std::vector<int>> groups;
        std::vector<size_t> rows;
        for (size_t i = 0; i < artifacts_.candidate_groups.size(); ++i) {
          const std::vector<int>& group = artifacts_.candidate_groups[i];
          if (request.contains_node >= 0 &&
              !std::binary_search(group.begin(), group.end(),
                                  static_cast<int>(request.contains_node))) {
            continue;
          }
          const int size = static_cast<int>(group.size());
          if (request.min_size > 0 && size < request.min_size) continue;
          if (request.max_size > 0 && size > request.max_size) continue;
          rows.push_back(i);
          groups.push_back(group);
        }
        if (groups.empty()) {
          status = Status::FailedPrecondition(
              "what-if: no resident groups match the filter");
          response = RenderErrorResponse(request.id, request.op, status);
          break;
        }
        Matrix subset(groups.size(), artifacts_.group_embeddings.cols());
        for (size_t r = 0; r < rows.size(); ++r) {
          for (size_t c = 0; c < subset.cols(); ++c) {
            subset(r, c) = artifacts_.group_embeddings(rows[r], c);
          }
        }
        TpGrGadOptions options;
        options.detector = kind;
        options.seed = request.has_seed ? request.seed : artifacts_.seed;
        auto result = RunScoringStage(subset, groups, options, &ctx);
        if (!result.ok()) {
          status = result.status();
          response = RenderErrorResponse(request.id, request.op, status);
          break;
        }
        response = RenderScoredGroupsResponse(
            request.id, request.op, result.value().scored_groups, request.top);
        break;
      }
      case ServeOp::kStats: {
        response = "{\"id\": " + std::to_string(request.id) +
                   ", \"op\": \"stats\", \"status\": \"ok\", \"metrics\": " +
                   MetricsJson() + "}";
        break;
      }
      case ServeOp::kShutdown: {
        shutdown_.store(true, std::memory_order_relaxed);
        response = "{\"id\": " + std::to_string(request.id) +
                   ", \"op\": \"shutdown\", \"status\": \"ok\", "
                   "\"draining\": true}";
        break;
      }
      case ServeOp::kAddEdge:
      case ServeOp::kRemoveEdge: {
        bool applied = false;
        int fanout = 0;
        const bool add = request.op == ServeOp::kAddEdge;
        // Ids beyond int range cannot name a node; treat as a structural
        // no-op rather than an error, matching DynamicGraph's semantics.
        if (request.u <= INT32_MAX && request.v <= INT32_MAX) {
          applied = ApplyEdgeMutation(add, static_cast<int>(request.u),
                                      static_cast<int>(request.v), &fanout);
        }
        if (applied && wal_ != nullptr) {
          // Durability before the ack: the record must survive a crash the
          // instant after the client reads the response. An append failure
          // rolls the mutation back (the dirty marks stay — harmless
          // over-invalidation) so memory never diverges from the log.
          GraphMutation m;
          m.kind = add ? GraphMutation::Kind::kAddEdge
                       : GraphMutation::Kind::kRemoveEdge;
          m.u = std::min(static_cast<int>(request.u),
                         static_cast<int>(request.v));
          m.v = std::max(static_cast<int>(request.u),
                         static_cast<int>(request.v));
          const uint64_t fsyncs_before = wal_->fsyncs();
          const uint64_t bytes_before = wal_->bytes_appended();
          status = wal_->Append(WalRecord::Kind::kMutation, m);
          if (!status.ok()) {
            if (add) {
              dynamic_.RemoveEdge(m.u, m.v);
            } else {
              dynamic_.AddEdge(m.u, m.v);
            }
            metrics_.RecordDurabilityError(status);
            response = RenderErrorResponse(request.id, request.op, status);
            break;
          }
          metrics_.RecordWalAppend(
              static_cast<size_t>(wal_->bytes_appended() - bytes_before),
              wal_->fsyncs() > fsyncs_before);
          // The logged-but-unacked kill window: recovery includes this op
          // even though the client never saw the ack.
          (void)FaultInjector::Global().Fires("wal/post-append-pre-ack");
        }
        metrics_.RecordMutation(applied, fanout);
        response = RenderMutationResponse(request.id, request.op, applied,
                                          fanout, dynamic_.num_edges());
        if (applied) MaybeSnapshot();
        break;
      }
      case ServeOp::kRefresh: {
        const std::vector<int> dirty = tracker_.TakeDirtyIndices();
        RefreshStats rstats;
        status = RefreshArtifacts(dynamic_.PackedView(), options_.pipeline,
                                  dirty, &refresh_state_, &artifacts_, &ctx,
                                  &rstats);
        if (!status.ok()) {
          // The dirty marks were consumed but the refresh never landed;
          // re-mark everything so the next refresh retries from scratch
          // (RefreshArtifacts already unprimed its cache).
          tracker_.MarkAll();
          response = RenderErrorResponse(request.id, request.op, status);
          break;
        }
        if (wal_ != nullptr) {
          // The refresh consumed the dirty marks and rewrote the resident
          // artifacts; the control record lets replay re-run it at exactly
          // this position. On append failure the refresh cannot be made
          // durable: unprime + re-mark so the next refresh (in this world
          // AND a recovered one) is the same history-independent full
          // resample.
          status = wal_->Append(WalRecord::Kind::kRefresh);
          if (!status.ok()) {
            tracker_.MarkAll();
            refresh_state_.primed = false;
            metrics_.RecordDurabilityError(status);
            response = RenderErrorResponse(request.id, request.op, status);
            break;
          }
        }
        metrics_.RecordRefresh(rstats.dirty_anchors, rstats.reused_anchors);
        response = RenderRefreshResponse(request.id, rstats.dirty_anchors,
                                         rstats.reused_anchors,
                                         artifacts_.scored_groups,
                                         request.top);
        break;
      }
      case ServeOp::kCompact: {
        dynamic_.Compact();
        if (wal_ != nullptr) {
          // Compaction only moves counters (compactions, pending_log), but
          // those surface in compact responses — replaying the record keeps
          // a recovered daemon's counters aligned.
          status = wal_->Append(WalRecord::Kind::kCompact);
          if (!status.ok()) {
            metrics_.RecordDurabilityError(status);
            response = RenderErrorResponse(request.id, request.op, status);
            break;
          }
        }
        const DynamicGraphStats dstats = dynamic_.stats();
        response = RenderCompactResponse(request.id, dynamic_.num_edges(),
                                         dstats.compactions,
                                         dstats.pending_log);
        break;
      }
      case ServeOp::kSync: {
        if (wal_ == nullptr) {
          status = Status::FailedPrecondition(
              "sync requires a daemon started with --state-dir");
          response = RenderErrorResponse(request.id, request.op, status);
          break;
        }
        status = wal_->Sync();
        if (!status.ok()) {
          metrics_.RecordDurabilityError(status);
          response = RenderErrorResponse(request.id, request.op, status);
          break;
        }
        metrics_.RecordWalSync();
        response = RenderSyncResponse(request.id, wal_->last_seq());
        break;
      }
      case ServeOp::kSnapshot: {
        status = SnapshotNow();
        if (!status.ok()) {
          if (wal_ != nullptr) metrics_.RecordDurabilityError(status);
          response = RenderErrorResponse(request.id, request.op, status);
          break;
        }
        response = RenderSnapshotResponse(request.id, wal_->last_seq());
        break;
      }
    }
  }

  if (status_out != nullptr) *status_out = status;
  if (timings_out != nullptr) *timings_out = ctx.stage_timings();
  return response;
}

}  // namespace grgad
