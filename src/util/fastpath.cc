#include "src/util/fastpath.h"

#include <atomic>

namespace grgad {

namespace {
std::atomic<bool> g_scoring_fast_path{true};
std::atomic<bool> g_candidate_fast_path{true};
}  // namespace

bool ScoringFastPathEnabled() {
  return g_scoring_fast_path.load(std::memory_order_relaxed);
}

bool SetScoringFastPath(bool enabled) {
  return g_scoring_fast_path.exchange(enabled, std::memory_order_relaxed);
}

bool CandidateFastPathEnabled() {
  return g_candidate_fast_path.load(std::memory_order_relaxed);
}

bool SetCandidateFastPath(bool enabled) {
  return g_candidate_fast_path.exchange(enabled, std::memory_order_relaxed);
}

}  // namespace grgad
