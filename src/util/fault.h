// Seeded fault injection at named points.
//
// The engine's fault-tolerance claims (atomic artifact saves, retries around
// transient I/O, graceful ensemble degradation, clean unwind on allocation
// pressure) are only claims until something actually fails. A FaultInjector
// makes failures reproducible: each named fault point draws a deterministic
// fail/pass decision per call from (seed, point name, per-point call count),
// so a given spec replays the same fault pattern on every run — and a
// stress harness can sweep seeds (tests/fault_stress_test.cc).
//
// Activation: the GRGAD_FAULTS environment variable (read once, lazily) or
// `grgad run --inject=SPEC`, both using the same spec syntax:
//
//   GRGAD_FAULTS="seed=7,rate=0.02"                 every point at 2%
//   GRGAD_FAULTS="seed=7,artifact/write=0.5"        one point at 50%
//   GRGAD_FAULTS="seed=7,rate=0.01,artifact/rename=1"  global + override
//   GRGAD_FAULTS="crash=1,wal/mid-append=1"         kill-point harness
//
// Crash mode (`crash=1`): a fired point calls _exit(137) instead of
// returning an error — a deterministic stand-in for kill -9 at a chosen
// instant, used by the crash-recovery sweep (tests/crash_recovery_test.cc).
//
// Known points (also PERF.md, "Robustness"):
//   stage/anchors, stage/sampling, stage/embedding, stage/scoring
//       stage-boundary faults (injected Internal error before the stage)
//   artifact/write, artifact/read, artifact/fsync, artifact/rename
//       artifact file I/O (injected IoError — the retryable category)
//   dataset/load      dataset construction (injected IoError)
//   arena/alloc       a fresh MatrixArena heap allocation is treated as a
//                     byte-budget breach (clean kResourceExhausted unwind)
//   parallel/dispatch ParallelFor degrades the region to the serial inline
//                     path (results are bitwise identical by contract)
//   od/ensemble-member  one ensemble member's fit fails (injected Internal);
//                     the ensemble continues with the survivors
//   serve/admit       the serving daemon rejects a request at admission
//                     (injected ResourceExhausted — an error response, the
//                     daemon keeps serving)
//   serve/execute     a batched request fails before execution (injected
//                     Internal — degrades that request only, never the
//                     daemon)
//   wal/pre-append    before a WAL record's first byte is written (the
//                     mutation is applied in memory but never logged)
//   wal/mid-append    between the two writes that frame a WAL record —
//                     in crash mode this leaves a deterministic torn tail;
//                     as an error the partial record is truncated away and
//                     an IoError surfaces
//   wal/post-append-pre-ack  after the record is durable but before the
//                     client sees the ack (recovery MUST include the op)
//   snapshot/mid      inside snapshot staging (torn snapshot is discarded
//                     on load; the WAL still covers the session)
//   snapshot/post-pre-truncate  after the snapshot commits but before the
//                     replayed WAL prefix is truncated (replay must skip
//                     records at or below the snapshot high-water mark)
//
// When disabled (the default) every check is a single relaxed atomic load.
// Configure() must not race in-flight checks: configure between runs.
#ifndef GRGAD_UTIL_FAULT_H_
#define GRGAD_UTIL_FAULT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/util/status.h"

namespace grgad {

class FaultInjector {
 public:
  /// The process-wide injector. First use reads GRGAD_FAULTS (a malformed
  /// spec is reported to stderr once and leaves injection disabled).
  static FaultInjector& Global();

  /// (Re)configures from a spec string; "" or "off" disables. Resets all
  /// per-point call counters and the fired/checked totals.
  Status Configure(const std::string& spec);

  /// Disables injection (counters are kept until the next Configure).
  void Disable();

  bool enabled() const;

  /// True when the named point should fail on this call. Deterministic in
  /// (seed, point, per-point call number); always false when disabled.
  bool Fires(const char* point);

  /// OK when the point does not fire; an injected `code` error naming the
  /// point otherwise. The convenience form of Fires() for Status plumbing.
  Status Check(const char* point, StatusCode code = StatusCode::kIoError);

  /// Total decisions taken / faults fired since the last Configure or
  /// ResetCounters. fired_count() == 0 after a run means the run saw no
  /// injected fault and must match a fault-free run bit for bit.
  uint64_t checked_count() const;
  uint64_t fired_count() const;
  void ResetCounters();

  /// Every known fault-point name, for docs, spec validation, and sweeps.
  static std::vector<std::string> KnownPoints();

 private:
  FaultInjector() = default;
};

}  // namespace grgad

#endif  // GRGAD_UTIL_FAULT_H_
