// Minimal leveled logging to stderr.
//
// Benches and examples log progress at kInfo; library internals log only at
// kDebug so that production use is silent by default. The level is process
// global and can be set programmatically or via the GRGAD_LOG_LEVEL
// environment variable (debug|info|warning|error|off).
#ifndef GRGAD_UTIL_LOGGING_H_
#define GRGAD_UTIL_LOGGING_H_

#include <sstream>
#include <string>

namespace grgad {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3,
                      kOff = 4 };

/// Sets the global minimum level that will be emitted.
void SetLogLevel(LogLevel level);

/// Current global level (initialized from GRGAD_LOG_LEVEL on first use).
LogLevel GetLogLevel();

namespace internal {

/// Stream-style log line; emits on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal

#define GRGAD_LOG(level)                                                   \
  if (::grgad::LogLevel::level >= ::grgad::GetLogLevel())                  \
  ::grgad::internal::LogMessage(::grgad::LogLevel::level, __FILE__, __LINE__)

}  // namespace grgad

#endif  // GRGAD_UTIL_LOGGING_H_
