// Status / Result error-handling primitives (RocksDB/Arrow style).
//
// Public grgad APIs that can fail for reasons other than programmer error
// return Status (or Result<T> when they also produce a value). Programmer
// errors (out-of-range indices, shape mismatches) are handled by the
// GRGAD_CHECK macros in util/check.h instead.
#ifndef GRGAD_UTIL_STATUS_H_
#define GRGAD_UTIL_STATUS_H_

#include <string>
#include <utility>
#include <variant>

namespace grgad {

/// Machine-readable error category carried by Status.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kOutOfRange = 3,
  kFailedPrecondition = 4,
  kInternal = 5,
  kIoError = 6,
  kNotConverged = 7,
  kCancelled = 8,
  kDeadlineExceeded = 9,
  kResourceExhausted = 10,
  kDataLoss = 11,
};

/// Human-readable name of a StatusCode (e.g. "InvalidArgument").
const char* StatusCodeName(StatusCode code);

/// Result of an operation: a code plus, for non-OK results, a message.
///
/// Status is cheap to copy in the OK case (empty message). Typical use:
///
///   Status s = graph.Validate();
///   if (!s.ok()) return s;
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with the given code and message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  /// Named constructors, one per error category.
  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status NotConverged(std::string msg) {
    return Status(StatusCode::kNotConverged, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  /// Persistent-data corruption: checksum mismatches, truncated or missing
  /// artifact files. Never retryable — the bytes on disk are wrong.
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }

  /// True iff this status represents success.
  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// A value-or-error holder. Access the value only after checking ok().
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value) : payload_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit construction from an error status. Must not be OK.
  Result(Status status) : payload_(std::move(status)) {}  // NOLINT

  bool ok() const { return std::holds_alternative<T>(payload_); }

  /// The error status; Status::Ok() when this holds a value.
  Status status() const {
    if (ok()) return Status::Ok();
    return std::get<Status>(payload_);
  }

  /// The contained value. Precondition: ok().
  const T& value() const& { return std::get<T>(payload_); }
  T& value() & { return std::get<T>(payload_); }
  T&& value() && { return std::get<T>(std::move(payload_)); }

  /// Returns the value or `fallback` when this holds an error.
  T value_or(T fallback) const {
    return ok() ? std::get<T>(payload_) : std::move(fallback);
  }

 private:
  std::variant<T, Status> payload_;
};

/// Propagates a non-OK status to the caller.
#define GRGAD_RETURN_IF_ERROR(expr)                  \
  do {                                               \
    ::grgad::Status grgad_status_ = (expr);          \
    if (!grgad_status_.ok()) return grgad_status_;   \
  } while (0)

}  // namespace grgad

#endif  // GRGAD_UTIL_STATUS_H_
