// Invariant-checking macros for programmer errors.
//
// GRGAD_CHECK* abort with a diagnostic on violation; they are active in all
// build types because silent shape/index corruption in numeric code is far
// more expensive than the branch. GRGAD_DCHECK compiles out in NDEBUG builds
// and is meant for hot inner loops.
#ifndef GRGAD_UTIL_CHECK_H_
#define GRGAD_UTIL_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace grgad::internal {

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr) {
  std::fprintf(stderr, "[grgad] CHECK failed at %s:%d: %s\n", file, line,
               expr);
  std::fflush(stderr);
  std::abort();
}

}  // namespace grgad::internal

#define GRGAD_CHECK(cond)                                       \
  do {                                                          \
    if (!(cond)) {                                              \
      ::grgad::internal::CheckFailed(__FILE__, __LINE__, #cond); \
    }                                                           \
  } while (0)

#define GRGAD_CHECK_EQ(a, b) GRGAD_CHECK((a) == (b))
#define GRGAD_CHECK_NE(a, b) GRGAD_CHECK((a) != (b))
#define GRGAD_CHECK_LT(a, b) GRGAD_CHECK((a) < (b))
#define GRGAD_CHECK_LE(a, b) GRGAD_CHECK((a) <= (b))
#define GRGAD_CHECK_GT(a, b) GRGAD_CHECK((a) > (b))
#define GRGAD_CHECK_GE(a, b) GRGAD_CHECK((a) >= (b))

#ifdef NDEBUG
#define GRGAD_DCHECK(cond) \
  do {                     \
  } while (0)
#else
#define GRGAD_DCHECK(cond) GRGAD_CHECK(cond)
#endif

#endif  // GRGAD_UTIL_CHECK_H_
