// Global switches for the optimized scoring and candidate stages.
//
// Both mirror the training fast-path switch in src/tensor/arena.h: when
// enabled (the default), the stage hot paths run their blocked/parallel
// implementations; when disabled, every one of those paths falls back to the
// seed-shaped serial loops so `micro_benchmarks` can measure seed-vs-opt and
// tests can compare the two paths.
//
// Scoring (PERF.md, "Scoring stage"): GEMM-based pairwise distances and
// panel-streamed neighbor selection (src/od/neighbor_index.cc),
// column-parallel ECOD, tree-parallel IsolationForest, edge-parallel
// GraphSNN weighting. Both settings are bitwise reproducible across runs and
// across GRGAD_THREADS; ECOD, IsolationForest, and GraphSNN produce bitwise
// identical output under both settings, while the GEMM distance paths
// (kNN/LOF) match the seed path at the score-*rank* level (the distance
// identity contracts FMAs differently than the seed's scalar loop).
//
// Candidates (PERF.md, "Candidate stage"): the anchor-parallel
// workspace-backed `GroupSampler::Sample` (per-worker TraversalWorkspaces,
// shared adjacency-slot edge costs, one Bellman–Ford per anchor) and the
// SubgraphView consumers (pattern search, augmentation, the TPGCL batch
// builder) in place of `Graph::InducedSubgraph` copies. Candidate output —
// groups, order, and the seeded subsample draw — is bitwise identical under
// both settings and across GRGAD_THREADS.
//
// These switches live in src/util (not src/od or src/sampling) because the
// graph layer (graphsnn.cc, algorithms) consults them too, and the graph
// layer must not depend on higher layers.
#ifndef GRGAD_UTIL_FASTPATH_H_
#define GRGAD_UTIL_FASTPATH_H_

namespace grgad {

/// True when the optimized scoring-stage implementations are active.
bool ScoringFastPathEnabled();

/// Flips the scoring fast path globally; returns the previous setting. Not
/// intended for concurrent toggling while a scoring call is in flight.
bool SetScoringFastPath(bool enabled);

/// True when the optimized candidate-stage implementations are active.
bool CandidateFastPathEnabled();

/// Flips the candidate fast path globally; returns the previous setting. Not
/// intended for concurrent toggling while a sampling call is in flight.
bool SetCandidateFastPath(bool enabled);

}  // namespace grgad

#endif  // GRGAD_UTIL_FASTPATH_H_
