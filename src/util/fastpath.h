// Global switch for the optimized scoring stage.
//
// Mirrors the training fast-path switch in src/tensor/arena.h: when enabled
// (the default), the scoring hot paths run their blocked/parallel
// implementations — GEMM-based pairwise distances and panel-streamed
// neighbor selection (src/od/neighbor_index.cc), column-parallel ECOD,
// tree-parallel IsolationForest, edge-parallel GraphSNN weighting. When
// disabled, every one of those paths falls back to the seed-shaped serial
// loops so `micro_benchmarks` can measure seed-vs-opt scoring and tests can
// compare the two paths.
//
// Determinism contract (details in PERF.md, "Scoring stage"): both settings
// are bitwise reproducible across runs and across GRGAD_THREADS; ECOD,
// IsolationForest, and GraphSNN produce bitwise identical output under both
// settings, while the GEMM distance paths (kNN/LOF) match the seed path at
// the score-*rank* level (the distance identity contracts FMAs differently
// than the seed's scalar diff-square loop).
//
// This switch lives in src/util (not src/od) because src/graph/graphsnn.cc
// consults it too, and the graph layer must not depend on the od layer.
#ifndef GRGAD_UTIL_FASTPATH_H_
#define GRGAD_UTIL_FASTPATH_H_

namespace grgad {

/// True when the optimized scoring-stage implementations are active.
bool ScoringFastPathEnabled();

/// Flips the scoring fast path globally; returns the previous setting. Not
/// intended for concurrent toggling while a scoring call is in flight.
bool SetScoringFastPath(bool enabled);

}  // namespace grgad

#endif  // GRGAD_UTIL_FASTPATH_H_
