#include "src/util/logging.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

namespace grgad {

namespace {

LogLevel g_level = LogLevel::kInfo;
std::once_flag g_env_once;
std::mutex g_emit_mutex;

void InitFromEnv() {
  const char* env = std::getenv("GRGAD_LOG_LEVEL");
  if (env == nullptr) return;
  if (std::strcmp(env, "debug") == 0) g_level = LogLevel::kDebug;
  else if (std::strcmp(env, "info") == 0) g_level = LogLevel::kInfo;
  else if (std::strcmp(env, "warning") == 0) g_level = LogLevel::kWarning;
  else if (std::strcmp(env, "error") == 0) g_level = LogLevel::kError;
  else if (std::strcmp(env, "off") == 0) g_level = LogLevel::kOff;
}

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "D";
    case LogLevel::kInfo: return "I";
    case LogLevel::kWarning: return "W";
    case LogLevel::kError: return "E";
    case LogLevel::kOff: return "-";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) {
  std::call_once(g_env_once, InitFromEnv);
  g_level = level;
}

LogLevel GetLogLevel() {
  std::call_once(g_env_once, InitFromEnv);
  return g_level;
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  const char* base = std::strrchr(file, '/');
  stream_ << "[" << LevelTag(level) << " " << (base ? base + 1 : file) << ":"
          << line << "] ";
}

LogMessage::~LogMessage() {
  std::lock_guard<std::mutex> lock(g_emit_mutex);
  std::fprintf(stderr, "%s\n", stream_.str().c_str());
}

}  // namespace internal

}  // namespace grgad
