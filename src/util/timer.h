// Wall-clock stopwatch used by benches and training loops.
#ifndef GRGAD_UTIL_TIMER_H_
#define GRGAD_UTIL_TIMER_H_

#include <chrono>

namespace grgad {

/// Monotonic stopwatch; starts running on construction.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction or the last Reset().
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace grgad

#endif  // GRGAD_UTIL_TIMER_H_
