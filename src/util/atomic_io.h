// Crash-safe file primitives shared by every durable store.
//
// PR 6 proved the recipe inside the artifact store (write to a staged
// sibling, fsync file-then-directory, commit by rename, checksum on read);
// the write-ahead log and serve snapshots need the identical primitives, so
// they live here instead of being re-derived per subsystem. All helpers
// keep the artifact-layer fault points ("artifact/write", "artifact/read",
// "artifact/fsync", "artifact/rename") so the existing seeded fault sweeps
// exercise every durable path, old and new.
#ifndef GRGAD_UTIL_ATOMIC_IO_H_
#define GRGAD_UTIL_ATOMIC_IO_H_

#include <array>
#include <cstdint>
#include <string>
#include <string_view>

#include "src/util/status.h"

namespace grgad {

/// Value of hex digit `c`, or -1. A 256-entry table instead of compare
/// chains: bulk snapshot payloads decode one nibble per character, so this
/// lookup sits in the innermost recovery loop and must stay branch-free.
inline int HexNibble(char c) {
  static constexpr auto kTable = [] {
    std::array<int8_t, 256> t{};
    t.fill(-1);
    for (int d = '0'; d <= '9'; ++d) t[d] = static_cast<int8_t>(d - '0');
    for (int d = 'a'; d <= 'f'; ++d) t[d] = static_cast<int8_t>(d - 'a' + 10);
    for (int d = 'A'; d <= 'F'; ++d) t[d] = static_cast<int8_t>(d - 'A' + 10);
    return t;
  }();
  return kTable[static_cast<unsigned char>(c)];
}

/// 17 significant digits round-trip any finite IEEE-754 double exactly —
/// the on-disk precision of every durable double in the system.
std::string FormatExactDouble(double v);

/// The raw IEEE-754 bit pattern of `v` as 16 lower-case hex digits —
/// trivially bit-exact (it IS the bits) and parsed by table lookup alone,
/// ~3x cheaper than even fast-path decimal. The encoding for bulk durable
/// payloads (snapshot attribute rows) where parse speed bounds recovery
/// time; human-facing singles keep FormatExactDouble. Reader counterpart:
/// TokenScanner::F64Bits.
std::string FormatDoubleBits(double v);

/// FNV-1a 64 over the bytes of `s` (the checksum recorded by manifests and
/// WAL records).
uint64_t Fnv1a64(const std::string& s);

/// Lower-case, zero-padded 16-digit hex of `v` (checksum wire form).
std::string HexU64(uint64_t v);

/// Truncating whole-file write ("artifact/write" fault point). Not durable
/// on its own — pair with FsyncPath before any rename that publishes it.
Status WriteTextFile(const std::string& path, const std::string& content);

/// Whole-file read ("artifact/read" fault point).
Result<std::string> ReadTextFile(const std::string& path);

/// fsync of a file or directory via its POSIX descriptor ("artifact/fsync"
/// fault point); rename-commit is only crash-safe once the staged files AND
/// the staging directory itself are durable.
Status FsyncPath(const std::string& path, bool is_dir);

/// Publishes staged directory `tmp` as `target` via the rename dance
/// (target -> target.old, tmp -> target, drop .old), with the
/// "artifact/rename" fault point checked first. rename(2) cannot replace a
/// non-empty directory, hence the dance; a real rename failure restores the
/// previous `target`, and a hard crash between the renames leaves `target`
/// absent — NotFound on load, never a torn mixture that parses. Finishes
/// with a best-effort parent-directory fsync (the commit already happened,
/// so an fsync failure there must not fail the save). On error `tmp` is
/// removed.
Status CommitDirReplace(const std::string& tmp, const std::string& target);

/// Whitespace-token scanner over an in-memory durable payload, the load-path
/// counterpart of the append-only text writers above. istringstream
/// extraction costs ~1 us per numeric token, which made snapshot recovery
/// scale with the text size instead of the disk: 8000 nodes of 16-d exact
/// doubles parsed slower than they fsynced. from_chars-based extraction is
/// ~20x cheaper and stricter — a token must be a COMPLETE number (no
/// "123abc" prefix reads), which is the right posture for checksummed
/// machine-written state where any malformed token means damage.
///
/// The scanned string must outlive the scanner (tokens are views into it).
class TokenScanner {
 public:
  explicit TokenScanner(const std::string& text)
      : p_(text.data()), end_(text.data() + text.size()) {}
  explicit TokenScanner(std::string_view text)
      : p_(text.data()), end_(text.data() + text.size()) {}

  /// Next whitespace-delimited token; false at end of input.
  bool Token(std::string_view* out);
  /// Next token must equal `expected` exactly.
  bool Keyword(std::string_view expected);
  /// Next token parsed fully as a signed 64-bit integer / decimal double.
  bool I64(long long* out);
  bool F64(double* out);
  /// Next token must be exactly 16 hex digits — the FormatDoubleBits wire
  /// form. Pure bit reassembly, no rounding anywhere to reason about.
  bool F64Bits(double* out);
  /// True when only whitespace remains (the "no trailing data" check).
  bool AtEnd();
  /// Unconsumed input (may start with whitespace) — lets a caller hand a
  /// regular trailing section (e.g. fixed-width rows) to parallel workers.
  std::string_view Remaining() const {
    return std::string_view(p_, static_cast<size_t>(end_ - p_));
  }

 private:
  const char* p_;
  const char* end_;
};

}  // namespace grgad

#endif  // GRGAD_UTIL_ATOMIC_IO_H_
