// Tiny data-parallel helper for the dense-matmul hot path.
//
// grgad's training loops are dominated by feature-matrix products; this
// splits a [0, n) range across a small fixed set of std::threads. The split
// is deterministic (contiguous chunks), so parallel results are bitwise
// independent of thread scheduling for disjoint-output loops.
#ifndef GRGAD_UTIL_PARALLEL_H_
#define GRGAD_UTIL_PARALLEL_H_

#include <cstddef>
#include <functional>

namespace grgad {

/// Number of worker threads used by ParallelFor (>= 1). Initialized from
/// hardware_concurrency, overridable via GRGAD_THREADS or
/// SetParallelismDegree.
int ParallelismDegree();

/// Forces ParallelismDegree() to `degree` (>= 1) and rebuilds the worker
/// pool to match; takes precedence over GRGAD_THREADS. Intended for startup
/// configuration (e.g. the `grgad run --threads` flag) — must not be called
/// while parallel regions are in flight. Kernel results are bitwise
/// independent of the degree, so this only changes resource usage.
void SetParallelismDegree(int degree);

/// Runs body(begin, end) over a contiguous partition of [0, n).
///
/// Falls back to a single inline call when n < min_grain or only one thread
/// is available. `body` must write disjoint outputs per sub-range.
void ParallelFor(size_t n, size_t min_grain,
                 const std::function<void(size_t, size_t)>& body);

}  // namespace grgad

#endif  // GRGAD_UTIL_PARALLEL_H_
