// Capped exponential backoff with seeded jitter for fallible I/O.
//
// Transient failures (a full page cache, NFS hiccups, injected faults from
// src/util/fault.h) deserve a bounded number of retries; permanent errors
// (corruption, bad arguments, cancellation) must surface immediately. A
// Retryer wraps a Status- or Result-returning operation with that policy:
//
//   Retryer retryer(RetryPolicy{});
//   Status s = retryer.Run([&] { return SaveArtifacts(a, dir); });
//
// Determinism under test: the jitter stream is drawn from an Rng seeded by
// the policy, and the sleep itself is an injectable hook, so tests assert
// the exact backoff sequence without sleeping (tests/robustness_test.cc).
#ifndef GRGAD_UTIL_RETRY_H_
#define GRGAD_UTIL_RETRY_H_

#include <cstdint>
#include <functional>
#include <utility>

#include "src/util/rng.h"
#include "src/util/status.h"

namespace grgad {

/// Backoff/retry knobs. Attempt k (0-based) failing retryably sleeps
/// clamp(initial * multiplier^k, max) * (1 + jitter), jitter uniform in
/// [-jitter_fraction, +jitter_fraction).
struct RetryPolicy {
  int max_attempts = 3;                 ///< Total tries, including the first.
  double initial_backoff_seconds = 0.05;
  double max_backoff_seconds = 2.0;
  double backoff_multiplier = 2.0;
  double jitter_fraction = 0.25;
  uint64_t jitter_seed = 0xB0FFULL;     ///< Seeds the jitter stream.
};

/// The backoff (seconds) after the `attempt`-th failure (0-based), drawing
/// one jitter value from `rng`. Exposed for tests.
double BackoffSeconds(const RetryPolicy& policy, int attempt, Rng* rng);

/// The default transient-failure predicate: only kIoError retries. Deadline
/// expiry, cancellation, corruption (kDataLoss), and argument errors are
/// permanent by definition.
bool DefaultRetryable(const Status& status);

/// Runs an operation under a RetryPolicy. One Retryer = one jitter stream;
/// construct fresh per logical operation for reproducible backoff.
class Retryer {
 public:
  explicit Retryer(RetryPolicy policy);

  /// Replaces the sleep hook (default: std::this_thread::sleep_for). Tests
  /// install a collector to assert the backoff sequence.
  void set_sleeper(std::function<void(double)> sleeper) {
    sleeper_ = std::move(sleeper);
  }
  /// Replaces the transient-failure predicate (default: DefaultRetryable).
  void set_retryable(std::function<bool(const Status&)> retryable) {
    retryable_ = std::move(retryable);
  }

  /// Invokes `op` up to max_attempts times, sleeping between retryable
  /// failures. Returns the first success or the last failure.
  Status Run(const std::function<Status()>& op);

  /// Result-returning flavor of Run.
  template <typename T>
  Result<T> RunResult(const std::function<Result<T>()>& op) {
    Result<T> result = op();
    for (int attempt = 1;
         attempt < policy_.max_attempts && !result.ok() &&
         retryable_(result.status());
         ++attempt) {
      ++attempts_;
      sleeper_(BackoffSeconds(policy_, attempt - 1, &rng_));
      result = op();
    }
    ++attempts_;
    return result;
  }

  /// Total op invocations across Run/RunResult calls on this Retryer.
  int attempts() const { return attempts_; }

 private:
  RetryPolicy policy_;
  Rng rng_;
  int attempts_ = 0;
  std::function<void(double)> sleeper_;
  std::function<bool(const Status&)> retryable_;
};

}  // namespace grgad

#endif  // GRGAD_UTIL_RETRY_H_
