// Cooperative cancellation for long-running training / pipeline code.
//
// A CancelToken is a cheap shared handle to one atomic flag. The controller
// keeps a copy and calls RequestCancel() (from any thread, including a
// signal handler via the relaxed atomic store); workers embed a copy in
// their options and poll cancelled() at safe points — typically once per
// training epoch — then unwind by returning early. There is no forced
// termination: cancellation is only as prompt as the polling granularity,
// which is what keeps partially-written state impossible.
#ifndef GRGAD_UTIL_CANCEL_H_
#define GRGAD_UTIL_CANCEL_H_

#include <atomic>
#include <memory>

namespace grgad {

/// Shared cancellation flag. Copies alias the same flag; default-constructed
/// tokens are independent and start un-cancelled.
class CancelToken {
 public:
  CancelToken() : flag_(std::make_shared<std::atomic<bool>>(false)) {}

  /// Flags every copy of this token. Safe from any thread; idempotent.
  void RequestCancel() const { flag_->store(true, std::memory_order_relaxed); }

  /// True once any copy has been cancelled.
  bool cancelled() const { return flag_->load(std::memory_order_relaxed); }

 private:
  std::shared_ptr<std::atomic<bool>> flag_;
};

}  // namespace grgad

#endif  // GRGAD_UTIL_CANCEL_H_
