// Cooperative stop requests for long-running training / pipeline code.
//
// A CancelToken is a cheap shared handle to one atomic stop state. The
// controller keeps a copy and calls RequestCancel() (from any thread,
// including a signal handler via the relaxed atomic store) or arms a
// monotonic deadline with SetDeadlineAfter(); workers embed a copy in their
// options and poll stop_requested() at safe points — typically once per
// training epoch or per anchor chunk — then unwind by returning early.
// There is no forced termination: a stop is only as prompt as the polling
// granularity, which is what keeps partially-written state impossible.
//
// A token stops for one of three reasons, so the layer that converts the
// unwind into a Status can report the right error:
//   kCancelled         explicit RequestCancel() (Ctrl-C, a dropped request)
//   kDeadlineExceeded  the armed steady-clock deadline passed
//   kResourceExhausted a resource governor fired (MatrixArena byte budget)
// The first explicit reason wins; a deadline only reports when no explicit
// stop was requested before it passed.
#ifndef GRGAD_UTIL_CANCEL_H_
#define GRGAD_UTIL_CANCEL_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>

namespace grgad {

/// Why a CancelToken is asking its pollers to unwind.
enum class StopReason {
  kNone = 0,
  kCancelled = 1,
  kDeadlineExceeded = 2,
  kResourceExhausted = 3,
};

/// Shared stop flag + deadline. Copies alias the same state; default-
/// constructed tokens are independent and start un-stopped.
class CancelToken {
 public:
  CancelToken() : state_(std::make_shared<State>()) {}

  /// Flags every copy of this token with StopReason::kCancelled. Safe from
  /// any thread and from signal handlers (one atomic CAS); idempotent.
  void RequestCancel() const { RequestStop(StopReason::kCancelled); }

  /// Flags every copy with `reason`. The first non-kNone reason sticks;
  /// later requests (and a later-passing deadline) do not overwrite it.
  void RequestStop(StopReason reason) const {
    if (reason == StopReason::kNone) return;
    int expected = 0;
    state_->reason.compare_exchange_strong(expected, static_cast<int>(reason),
                                           std::memory_order_relaxed);
  }

  /// Arms (or re-arms) a monotonic deadline `seconds` from now. Polls of
  /// stop_requested() past that instant report kDeadlineExceeded. Seconds
  /// <= 0 trips immediately.
  void SetDeadlineAfter(double seconds) const {
    SetDeadline(std::chrono::steady_clock::now() +
                std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                    std::chrono::duration<double>(seconds)));
  }

  /// Arms an absolute steady-clock deadline.
  void SetDeadline(std::chrono::steady_clock::time_point deadline) const {
    const int64_t ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                           deadline.time_since_epoch())
                           .count();
    // 0 means "no deadline"; a deadline that lands exactly on tick 0 is
    // indistinguishable but 1ns early is harmless.
    state_->deadline_ns.store(ns == 0 ? 1 : ns, std::memory_order_relaxed);
  }

  /// Disarms the deadline (explicit stop reasons are unaffected).
  void ClearDeadline() const {
    state_->deadline_ns.store(0, std::memory_order_relaxed);
  }

  bool has_deadline() const {
    return state_->deadline_ns.load(std::memory_order_relaxed) != 0;
  }

  /// True once any copy has been stopped — explicitly or by deadline. This
  /// is the per-epoch / per-chunk poll.
  bool stop_requested() const {
    if (state_->reason.load(std::memory_order_relaxed) != 0) return true;
    return DeadlineExpired();
  }

  /// Legacy alias for stop_requested(): historical pollers only knew about
  /// explicit cancellation, and "unwind now" is the same answer either way.
  bool cancelled() const { return stop_requested(); }

  /// The stop reason (kNone while still running). Deadline expiry reports
  /// kDeadlineExceeded unless an explicit reason was requested first.
  StopReason stop_reason() const {
    const int r = state_->reason.load(std::memory_order_relaxed);
    if (r != 0) return static_cast<StopReason>(r);
    return DeadlineExpired() ? StopReason::kDeadlineExceeded
                             : StopReason::kNone;
  }

 private:
  struct State {
    std::atomic<int> reason{0};
    std::atomic<int64_t> deadline_ns{0};  ///< steady_clock ns; 0 = unarmed.
  };

  bool DeadlineExpired() const {
    const int64_t deadline = state_->deadline_ns.load(std::memory_order_relaxed);
    if (deadline == 0) return false;
    const int64_t now = std::chrono::duration_cast<std::chrono::nanoseconds>(
                            std::chrono::steady_clock::now().time_since_epoch())
                            .count();
    return now >= deadline;
  }

  std::shared_ptr<State> state_;
};

}  // namespace grgad

#endif  // GRGAD_UTIL_CANCEL_H_
