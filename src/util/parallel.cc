#include "src/util/parallel.h"

#include <algorithm>

#include "src/util/fault.h"
#include "src/util/thread_pool.h"

namespace grgad {

// ParallelismDegree() lives in thread_pool.cc next to the pool it sizes.

void ParallelFor(size_t n, size_t min_grain,
                 const std::function<void(size_t, size_t)>& body) {
  if (n == 0) return;
  if (min_grain == 0) min_grain = 1;  // A grain of 0 would divide by zero.
  const int degree = ParallelismDegree();
  if (degree <= 1 || n < min_grain * 2 || ThreadPool::InParallelRegion() ||
      // Injected dispatch fault: degrade this region to the serial inline
      // path. Kernel results are bitwise independent of the degree, so a
      // "failed" pool only costs time, never correctness.
      FaultInjector::Global().Fires("parallel/dispatch")) {
    body(0, n);
    return;
  }
  // Contiguous deterministic partition: a pure function of (n, min_grain,
  // degree), never of scheduling. Chunk c covers [c*chunk, min((c+1)*chunk, n)).
  const size_t num_chunks =
      std::min<size_t>(static_cast<size_t>(degree), n / min_grain + 1);
  const size_t chunk = (n + num_chunks - 1) / num_chunks;
  ThreadPool::Global().RunChunks(num_chunks, [&](size_t c) {
    const size_t begin = c * chunk;
    const size_t end = std::min(begin + chunk, n);
    if (begin < end) body(begin, end);
  });
}

}  // namespace grgad
