#include "src/util/parallel.h"

#include <cstdlib>
#include <thread>
#include <vector>

namespace grgad {

int ParallelismDegree() {
  static const int degree = [] {
    if (const char* env = std::getenv("GRGAD_THREADS")) {
      int v = std::atoi(env);
      if (v >= 1) return v;
    }
    unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<int>(hw);
  }();
  return degree;
}

void ParallelFor(size_t n, size_t min_grain,
                 const std::function<void(size_t, size_t)>& body) {
  if (n == 0) return;
  const int degree = ParallelismDegree();
  if (degree <= 1 || n < min_grain * 2) {
    body(0, n);
    return;
  }
  const size_t num_chunks =
      std::min<size_t>(static_cast<size_t>(degree), n / min_grain + 1);
  const size_t chunk = (n + num_chunks - 1) / num_chunks;
  std::vector<std::thread> workers;
  workers.reserve(num_chunks - 1);
  size_t begin = chunk;  // Chunk 0 runs on the calling thread below.
  for (size_t c = 1; c < num_chunks && begin < n; ++c) {
    size_t end = std::min(begin + chunk, n);
    workers.emplace_back([&body, begin, end] { body(begin, end); });
    begin = end;
  }
  body(0, std::min(chunk, n));
  for (auto& t : workers) t.join();
}

}  // namespace grgad
