#include "src/util/rng.h"

#include <cmath>

#include "src/util/check.h"

namespace grgad {

namespace {

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

uint64_t SplitMix64Next(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& si : s_) si = SplitMix64Next(&sm);
  // All-zero state is invalid for xoshiro; SplitMix64 cannot produce four
  // zeros from any seed, but guard anyway.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::Uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) {
  GRGAD_DCHECK(lo <= hi);
  return lo + (hi - lo) * Uniform();
}

uint64_t Rng::UniformInt(uint64_t n) {
  GRGAD_CHECK_GT(n, 0u);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = (0 - n) % n;
  for (;;) {
    uint64_t r = NextU64();
    if (r >= threshold) return r % n;
  }
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  GRGAD_CHECK(lo <= hi);
  return lo + static_cast<int64_t>(
                  UniformInt(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::Normal() {
  if (has_spare_normal_) {
    has_spare_normal_ = false;
    return spare_normal_;
  }
  double u1 = 0.0;
  while (u1 == 0.0) u1 = Uniform();
  const double u2 = Uniform();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  spare_normal_ = mag * std::sin(2.0 * M_PI * u2);
  has_spare_normal_ = true;
  return mag * std::cos(2.0 * M_PI * u2);
}

double Rng::Normal(double mean, double stddev) {
  return mean + stddev * Normal();
}

bool Rng::Bernoulli(double p) { return Uniform() < p; }

int Rng::Poisson(double lambda) {
  GRGAD_DCHECK(lambda >= 0.0);
  if (lambda <= 0.0) return 0;
  // Knuth inversion; fine for the small lambdas used by generators.
  const double limit = std::exp(-lambda);
  double prod = Uniform();
  int k = 0;
  while (prod > limit) {
    prod *= Uniform();
    ++k;
  }
  return k;
}

double Rng::Exponential(double rate) {
  GRGAD_DCHECK(rate > 0.0);
  double u = 0.0;
  while (u == 0.0) u = Uniform();
  return -std::log(u) / rate;
}

int Rng::PowerLaw(int k_min, int k_max, double alpha) {
  GRGAD_CHECK(k_min >= 1 && k_max >= k_min);
  // Inverse CDF of a bounded Pareto with exponent alpha > 1.
  const double a = 1.0 - alpha;
  const double lo = std::pow(static_cast<double>(k_min), a);
  const double hi = std::pow(static_cast<double>(k_max) + 1.0, a);
  const double u = Uniform();
  const double x = std::pow(lo + (hi - lo) * u, 1.0 / a);
  int k = static_cast<int>(x);
  if (k < k_min) k = k_min;
  if (k > k_max) k = k_max;
  return k;
}

std::vector<size_t> Rng::SampleWithoutReplacement(size_t n, size_t k) {
  GRGAD_CHECK_LE(k, n);
  // Partial Fisher–Yates over an index vector; O(n) setup, fine at our sizes.
  std::vector<size_t> idx(n);
  for (size_t i = 0; i < n; ++i) idx[i] = i;
  for (size_t i = 0; i < k; ++i) {
    size_t j = i + static_cast<size_t>(UniformInt(n - i));
    std::swap(idx[i], idx[j]);
  }
  idx.resize(k);
  return idx;
}

size_t Rng::WeightedIndex(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) {
    GRGAD_DCHECK(w >= 0.0);
    total += w;
  }
  GRGAD_CHECK_GT(total, 0.0);
  double r = Uniform() * total;
  for (size_t i = 0; i < weights.size(); ++i) {
    r -= weights[i];
    if (r <= 0.0) return i;
  }
  return weights.size() - 1;  // Floating-point slack.
}

}  // namespace grgad
