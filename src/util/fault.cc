#include "src/util/fault.h"

#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

#include "src/util/rng.h"

namespace grgad {
namespace {

// Fixed table of fault points: lookups are a short strcmp scan and the
// per-point state needs no allocation or rehashing under concurrent checks.
constexpr const char* kPointNames[] = {
    "stage/anchors",  "stage/sampling", "stage/embedding", "stage/scoring",
    "artifact/write", "artifact/read",  "artifact/fsync",  "artifact/rename",
    "dataset/load",   "arena/alloc",    "parallel/dispatch",
    "od/ensemble-member", "serve/admit", "serve/execute",
    "wal/pre-append", "wal/mid-append", "wal/post-append-pre-ack",
    "snapshot/mid",   "snapshot/post-pre-truncate",
};
constexpr int kNumPoints =
    static_cast<int>(sizeof(kPointNames) / sizeof(kPointNames[0]));

struct PointState {
  // Written by Configure() before enabled_ is released; read-only while
  // enabled, so plain doubles are race-free under the release/acquire pair.
  double rate = 0.0;
  std::atomic<uint64_t> calls{0};
};

struct InjectorState {
  std::atomic<bool> enabled{false};
  bool crash_mode = false;
  uint64_t seed = 0;
  PointState points[kNumPoints];
  std::atomic<uint64_t> checked{0};
  std::atomic<uint64_t> fired{0};
  std::mutex config_mu;
};

InjectorState& State() {
  static InjectorState* state = new InjectorState();
  return *state;
}

uint64_t Fnv1aStr(const char* s) {
  uint64_t h = 1469598103934665603ULL;
  for (; *s != '\0'; ++s) {
    h ^= static_cast<unsigned char>(*s);
    h *= 1099511628211ULL;
  }
  return h;
}

int PointIndex(const char* point) {
  for (int i = 0; i < kNumPoints; ++i) {
    if (std::strcmp(kPointNames[i], point) == 0) return i;
  }
  return -1;
}

bool ParseRate(const std::string& text, double* out) {
  char* end = nullptr;
  const double v = std::strtod(text.c_str(), &end);
  if (end == text.c_str() || *end != '\0' || v < 0.0 || v > 1.0) return false;
  *out = v;
  return true;
}

}  // namespace

FaultInjector& FaultInjector::Global() {
  static FaultInjector* injector = new FaultInjector();
  static std::once_flag env_once;
  std::call_once(env_once, [] {
    const char* spec = std::getenv("GRGAD_FAULTS");
    if (spec == nullptr || spec[0] == '\0') return;
    const Status s = injector->Configure(spec);
    if (!s.ok()) {
      std::fprintf(stderr, "warning: ignoring GRGAD_FAULTS: %s\n",
                   s.ToString().c_str());
    }
  });
  return *injector;
}

Status FaultInjector::Configure(const std::string& spec) {
  InjectorState& st = State();
  std::lock_guard<std::mutex> lock(st.config_mu);
  // Quiesce readers before mutating rates; checks in flight during a
  // Configure are a caller contract violation (see header).
  st.enabled.store(false, std::memory_order_release);
  st.crash_mode = false;
  st.seed = 0;
  for (PointState& p : st.points) {
    p.rate = 0.0;
    p.calls.store(0, std::memory_order_relaxed);
  }
  st.checked.store(0, std::memory_order_relaxed);
  st.fired.store(0, std::memory_order_relaxed);
  if (spec.empty() || spec == "off") return Status::Ok();

  double global_rate = 0.0;
  bool any_point_rate = false;
  size_t pos = 0;
  while (pos <= spec.size()) {
    size_t sep = spec.find_first_of(",;", pos);
    if (sep == std::string::npos) sep = spec.size();
    const std::string token = spec.substr(pos, sep - pos);
    pos = sep + 1;
    if (token.empty()) continue;
    const size_t eq = token.find('=');
    if (eq == std::string::npos) {
      return Status::InvalidArgument("fault spec token '" + token +
                                     "' is not key=value");
    }
    const std::string key = token.substr(0, eq);
    const std::string value = token.substr(eq + 1);
    if (key == "seed") {
      char* end = nullptr;
      st.seed = std::strtoull(value.c_str(), &end, 10);
      if (end == value.c_str() || *end != '\0') {
        return Status::InvalidArgument("fault spec: bad seed '" + value + "'");
      }
      continue;
    }
    if (key == "crash") {
      if (value != "0" && value != "1") {
        return Status::InvalidArgument("fault spec: crash must be 0 or 1, "
                                       "got '" + value + "'");
      }
      st.crash_mode = (value == "1");
      continue;
    }
    double rate = 0.0;
    if (!ParseRate(value, &rate)) {
      return Status::InvalidArgument("fault spec: rate for '" + key +
                                     "' must be in [0, 1], got '" + value +
                                     "'");
    }
    if (key == "rate") {
      global_rate = rate;
      continue;
    }
    const int idx = PointIndex(key.c_str());
    if (idx < 0) {
      std::string known;
      for (const char* name : kPointNames) {
        if (!known.empty()) known += ", ";
        known += name;
      }
      return Status::InvalidArgument("fault spec: unknown point '" + key +
                                     "' (known: " + known + ")");
    }
    st.points[idx].rate = rate;
    any_point_rate = true;
  }
  if (global_rate > 0.0) {
    for (PointState& p : st.points) {
      if (p.rate == 0.0) p.rate = global_rate;
    }
  } else if (!any_point_rate) {
    return Status::Ok();  // seed-only spec: nothing armed, stay disabled.
  }
  st.enabled.store(true, std::memory_order_release);
  return Status::Ok();
}

void FaultInjector::Disable() {
  State().enabled.store(false, std::memory_order_release);
}

bool FaultInjector::enabled() const {
  return State().enabled.load(std::memory_order_acquire);
}

bool FaultInjector::Fires(const char* point) {
  InjectorState& st = State();
  if (!st.enabled.load(std::memory_order_acquire)) return false;
  const int idx = PointIndex(point);
  if (idx < 0) return false;
  PointState& p = st.points[idx];
  const uint64_t n = p.calls.fetch_add(1, std::memory_order_relaxed);
  st.checked.fetch_add(1, std::memory_order_relaxed);
  if (p.rate <= 0.0) return false;
  // Deterministic per (seed, point, call#): the nth decision at a point is
  // a pure function of the spec, independent of which thread asks.
  uint64_t h = st.seed ^ Fnv1aStr(point) ^ (0x9E3779B97F4A7C15ULL * (n + 1));
  const uint64_t mixed = SplitMix64Next(&h);
  const double u = static_cast<double>(mixed >> 11) * 0x1.0p-53;
  const bool fire = u < p.rate;
  if (fire) {
    st.fired.fetch_add(1, std::memory_order_relaxed);
    // Crash mode turns the fired point into a deterministic kill site: the
    // process dies mid-operation exactly as kill -9 would, except the kill
    // instant is chosen by the spec. _exit (not exit) so no atexit handler
    // or stream flush runs — the on-disk state is whatever the operation
    // had durably written when the point fired. 137 = 128 + SIGKILL, the
    // same status a real kill -9 yields, so harnesses treat both alike.
    if (st.crash_mode) ::_exit(137);
  }
  return fire;
}

Status FaultInjector::Check(const char* point, StatusCode code) {
  if (!Fires(point)) return Status::Ok();
  return Status(code, std::string("injected fault at ") + point);
}

uint64_t FaultInjector::checked_count() const {
  return State().checked.load(std::memory_order_relaxed);
}

uint64_t FaultInjector::fired_count() const {
  return State().fired.load(std::memory_order_relaxed);
}

void FaultInjector::ResetCounters() {
  InjectorState& st = State();
  std::lock_guard<std::mutex> lock(st.config_mu);
  for (PointState& p : st.points) p.calls.store(0, std::memory_order_relaxed);
  st.checked.store(0, std::memory_order_relaxed);
  st.fired.store(0, std::memory_order_relaxed);
}

std::vector<std::string> FaultInjector::KnownPoints() {
  return std::vector<std::string>(kPointNames, kPointNames + kNumPoints);
}

}  // namespace grgad
