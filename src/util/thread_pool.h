// Persistent worker pool backing ParallelFor.
//
// The seed implementation spawned and joined fresh std::threads on every
// parallel region; at GCN-training call rates (thousands of small matmuls per
// epoch) thread creation dominated the kernels themselves. This pool starts
// its workers once (lazily, on the first parallel region), parks them on a
// condition variable, and hands out chunk indices from an atomic counter, so
// dispatch costs a notify + a few atomic increments instead of clone()/join().
//
// Determinism contract: the pool only distributes *which thread* runs a chunk;
// the chunk -> index-range mapping is computed by the caller and is a pure
// function of (n, min_grain, ParallelismDegree()). Kernels built on top keep
// a fixed per-element accumulation order, so results are bitwise reproducible
// for a fixed GRGAD_THREADS regardless of scheduling.
#ifndef GRGAD_UTIL_THREAD_POOL_H_
#define GRGAD_UTIL_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace grgad {

/// Fixed-size pool of parked worker threads executing chunked jobs.
///
/// One job runs at a time; RunChunks blocks until every chunk has executed.
/// The calling thread participates in the job, so a pool with W workers gives
/// W + 1 concurrent lanes. Safe to use from any thread, but concurrent
/// RunChunks callers are serialized by the caller (ParallelFor falls back to
/// inline execution when the pool is busy, preserving results).
class ThreadPool {
 public:
  /// Starts `num_workers` parked threads (0 is valid: RunChunks runs inline).
  explicit ThreadPool(int num_workers);

  /// Joins all workers. Must not race with RunChunks.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_workers() const { return static_cast<int>(workers_.size()); }

  /// Executes fn(c) for every c in [0, num_chunks), distributing chunks over
  /// the workers plus the calling thread; returns when all chunks finished.
  /// fn must not throw. Nested RunChunks calls from inside fn run inline.
  void RunChunks(size_t num_chunks, const std::function<void(size_t)>& fn);

  /// True when the current thread is a pool worker or is inside RunChunks —
  /// i.e. further parallel dispatch would deadlock or oversubscribe.
  static bool InParallelRegion();

  /// Process-wide pool with ParallelismDegree() - 1 workers, created on first
  /// use. Rebuilt by internal::SetParallelismDegreeForTest.
  static ThreadPool& Global();

 private:
  struct Job {
    const std::function<void(size_t)>* fn = nullptr;
    size_t num_chunks = 0;
    std::atomic<size_t> next{0};
    std::atomic<size_t> done{0};
  };

  void WorkerLoop();
  /// Pulls chunks from `job` until exhausted; signals done_cv_ on completion.
  void RunJobChunks(Job& job);

  std::mutex mu_;
  std::condition_variable cv_;
  std::shared_ptr<Job> job_;    // Current job; workers copy under mu_.
  uint64_t job_seq_ = 0;        // Bumped per job so workers join each once.
  bool shutdown_ = false;

  std::mutex done_mu_;
  std::condition_variable done_cv_;

  // Serializes dispatch; contended callers run their job inline instead.
  std::mutex dispatch_mu_;

  std::vector<std::thread> workers_;
};

namespace internal {

/// Test hook: forces ParallelismDegree() to `degree` (0 restores the
/// GRGAD_THREADS / hardware default) and rebuilds the global pool. Must not
/// be called while parallel regions are in flight.
void SetParallelismDegreeForTest(int degree);

}  // namespace internal

}  // namespace grgad

#endif  // GRGAD_UTIL_THREAD_POOL_H_
