#include "src/util/transport.h"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>
#include <utility>

namespace grgad {
namespace {

constexpr int kPollMillis = 50;

Status Errno(const std::string& what) {
  return Status::IoError(what + ": " + std::strerror(errno));
}

/// Fills `addr` from `path`; false when the path does not fit sun_path.
bool FillSockAddr(const std::string& path, sockaddr_un* addr) {
  if (path.size() >= sizeof(addr->sun_path)) return false;
  std::memset(addr, 0, sizeof(*addr));
  addr->sun_family = AF_UNIX;
  std::memcpy(addr->sun_path, path.c_str(), path.size() + 1);
  return true;
}

}  // namespace

LineChannel::LineChannel(int read_fd, int write_fd, bool own_fds)
    : read_fd_(read_fd), write_fd_(write_fd), own_fds_(own_fds) {}

LineChannel::~LineChannel() {
  if (!own_fds_) return;
  ::close(read_fd_);
  if (write_fd_ != read_fd_) ::close(write_fd_);
}

Status LineChannel::ReadLine(std::string* line, bool* eof,
                             const CancelToken* stop) {
  line->clear();
  *eof = false;
  for (;;) {
    const size_t newline = buffer_.find('\n');
    if (newline != std::string::npos) {
      line->assign(buffer_, 0, newline);
      buffer_.erase(0, newline + 1);
      return Status::Ok();
    }
    if (stop != nullptr && stop->stop_requested()) {
      *eof = true;
      return Status::Ok();
    }
    pollfd pfd{read_fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, kPollMillis);
    if (ready < 0) {
      if (errno == EINTR) continue;  // A stop signal lands on the next poll.
      return Errno("poll");
    }
    if (ready == 0) continue;  // Timeout tick: re-check the stop token.
    char chunk[4096];
    const ssize_t n = ::read(read_fd_, chunk, sizeof(chunk));
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("read");
    }
    if (n == 0) {
      // End of stream; hand back a trailing unterminated line, if any.
      if (!buffer_.empty()) {
        line->swap(buffer_);
        return Status::Ok();
      }
      *eof = true;
      return Status::Ok();
    }
    buffer_.append(chunk, static_cast<size_t>(n));
  }
}

Status LineChannel::WriteLine(const std::string& line) {
  std::lock_guard<std::mutex> lock(write_mu_);
  const std::string framed = line + "\n";
  size_t written = 0;
  while (written < framed.size()) {
    const ssize_t n =
        ::write(write_fd_, framed.data() + written, framed.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("write");
    }
    written += static_cast<size_t>(n);
  }
  return Status::Ok();
}

Result<UnixServerSocket> UnixServerSocket::Listen(const std::string& path) {
  sockaddr_un addr;
  if (!FillSockAddr(path, &addr)) {
    return Status::InvalidArgument("socket path too long: " + path);
  }
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  // A stale socket file from a dead daemon blocks bind; replace it. A live
  // daemon on the same path loses its listener too — picking distinct paths
  // is the operator's contract, same as any pidfile.
  ::unlink(path.c_str());
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    const Status status = Errno("bind " + path);
    ::close(fd);
    return status;
  }
  if (::listen(fd, 16) < 0) {
    const Status status = Errno("listen " + path);
    ::close(fd);
    ::unlink(path.c_str());
    return status;
  }
  return UnixServerSocket(fd, path);
}

UnixServerSocket::~UnixServerSocket() { CloseAndUnlink(); }

UnixServerSocket::UnixServerSocket(UnixServerSocket&& other) noexcept
    : fd_(other.fd_), path_(std::move(other.path_)) {
  other.fd_ = -1;
  other.path_.clear();
}

UnixServerSocket& UnixServerSocket::operator=(
    UnixServerSocket&& other) noexcept {
  if (this != &other) {
    CloseAndUnlink();
    fd_ = other.fd_;
    path_ = std::move(other.path_);
    other.fd_ = -1;
    other.path_.clear();
  }
  return *this;
}

void UnixServerSocket::CloseAndUnlink() {
  if (fd_ >= 0) {
    ::close(fd_);
    ::unlink(path_.c_str());
    fd_ = -1;
  }
}

Result<int> UnixServerSocket::Accept(const CancelToken* stop) {
  for (;;) {
    if (stop != nullptr && stop->stop_requested()) return -1;
    pollfd pfd{fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, kPollMillis);
    if (ready < 0) {
      if (errno == EINTR) continue;
      return Errno("poll");
    }
    if (ready == 0) continue;
    const int client = ::accept(fd_, nullptr, nullptr);
    if (client < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      return Errno("accept");
    }
    return client;
  }
}

Result<int> ConnectUnixSocket(const std::string& path,
                              double timeout_seconds) {
  sockaddr_un addr;
  if (!FillSockAddr(path, &addr)) {
    return Status::InvalidArgument("socket path too long: " + path);
  }
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(timeout_seconds));
  for (;;) {
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) return Errno("socket");
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0) {
      return fd;
    }
    const int saved_errno = errno;
    ::close(fd);
    // Absent or not-yet-listening paths are the expected startup race; give
    // the daemon until the deadline. Anything else is a real error.
    if (saved_errno != ENOENT && saved_errno != ECONNREFUSED) {
      errno = saved_errno;
      return Errno("connect " + path);
    }
    if (std::chrono::steady_clock::now() >= deadline) {
      return Status::DeadlineExceeded("connect " + path + ": daemon not up " +
                                      "within the wait window");
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(kPollMillis));
  }
}

}  // namespace grgad
