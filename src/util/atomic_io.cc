#include "src/util/atomic_io.h"

#include <fcntl.h>
#include <unistd.h>

#include <charconv>
#include <cstring>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "src/util/fault.h"

namespace grgad {

std::string FormatExactDouble(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string FormatDoubleBits(double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof bits);
  return HexU64(bits);
}

uint64_t Fnv1a64(const std::string& s) {
  uint64_t h = 1469598103934665603ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

std::string HexU64(uint64_t v) {
  char buf[20];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

Status WriteTextFile(const std::string& path, const std::string& content) {
  GRGAD_RETURN_IF_ERROR(FaultInjector::Global().Check("artifact/write"));
  std::ofstream out(path, std::ios::trunc | std::ios::binary);
  if (!out) return Status::IoError("cannot open for write: " + path);
  out << content;
  out.flush();
  if (!out) return Status::IoError("write failed: " + path);
  return Status::Ok();
}

Result<std::string> ReadTextFile(const std::string& path) {
  GRGAD_RETURN_IF_ERROR(FaultInjector::Global().Check("artifact/read"));
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) return Status::IoError("cannot open: " + path);
  // Sized read into the final buffer: rdbuf-to-stringstream doubles the
  // copy, which recovery pays on every multi-megabyte snapshot file.
  const std::streamoff size = in.tellg();
  if (size < 0) return Status::IoError("cannot size: " + path);
  std::string content(static_cast<size_t>(size), '\0');
  in.seekg(0);
  if (size > 0 && !in.read(content.data(), size)) {
    return Status::IoError("cannot read: " + path);
  }
  return content;
}

Status FsyncPath(const std::string& path, bool is_dir) {
  GRGAD_RETURN_IF_ERROR(FaultInjector::Global().Check("artifact/fsync"));
  const int fd =
      ::open(path.c_str(), is_dir ? (O_RDONLY | O_DIRECTORY) : O_RDONLY);
  if (fd < 0) return Status::IoError("cannot open for fsync: " + path);
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) return Status::IoError("fsync failed: " + path);
  return Status::Ok();
}

Status CommitDirReplace(const std::string& tmp, const std::string& target) {
  namespace fs = std::filesystem;
  const fs::path target_path(target);
  const fs::path tmp_path(tmp);
  const fs::path old(target + ".old");
  std::error_code ec;
  if (Status fault = FaultInjector::Global().Check("artifact/rename");
      !fault.ok()) {
    fs::remove_all(tmp_path, ec);
    return fault;
  }
  fs::remove_all(old, ec);
  ec.clear();
  const bool had_target = fs::exists(target_path);
  if (had_target) {
    fs::rename(target_path, old, ec);
    if (ec) {
      std::error_code cleanup;
      fs::remove_all(tmp_path, cleanup);
      return Status::IoError("cannot move aside " + target + ": " +
                             ec.message());
    }
  }
  fs::rename(tmp_path, target_path, ec);
  if (ec) {
    std::error_code restore;
    if (had_target) fs::rename(old, target_path, restore);
    fs::remove_all(tmp_path, restore);
    return Status::IoError("cannot commit " + tmp + " -> " + target + ": " +
                           ec.message());
  }
  if (had_target) fs::remove_all(old, ec);
  {
    const fs::path parent = target_path.has_parent_path()
                                ? target_path.parent_path()
                                : fs::path(".");
    const int fd = ::open(parent.string().c_str(), O_RDONLY | O_DIRECTORY);
    if (fd >= 0) {
      ::fsync(fd);
      ::close(fd);
    }
  }
  return Status::Ok();
}

namespace {

/// Locale-free whitespace test. std::isspace is an opaque per-character
/// libc call through the locale table; over a multi-megabyte snapshot that
/// one call is the single largest parse cost.
inline bool IsSpace(char c) {
  return c == ' ' || (c >= '\t' && c <= '\r');
}

}  // namespace

bool TokenScanner::Token(std::string_view* out) {
  while (p_ < end_ && IsSpace(*p_)) ++p_;
  if (p_ == end_) return false;
  const char* start = p_;
  while (p_ < end_ && !IsSpace(*p_)) ++p_;
  *out = std::string_view(start, static_cast<size_t>(p_ - start));
  return true;
}

bool TokenScanner::Keyword(std::string_view expected) {
  std::string_view token;
  return Token(&token) && token == expected;
}

bool TokenScanner::I64(long long* out) {
  std::string_view token;
  if (!Token(&token)) return false;
  const auto [ptr, ec] =
      std::from_chars(token.data(), token.data() + token.size(), *out);
  return ec == std::errc() && ptr == token.data() + token.size();
}

bool TokenScanner::F64(double* out) {
  std::string_view token;
  if (!Token(&token)) return false;
  const auto [ptr, ec] =
      std::from_chars(token.data(), token.data() + token.size(), *out);
  return ec == std::errc() && ptr == token.data() + token.size();
}

bool TokenScanner::F64Bits(double* out) {
  std::string_view token;
  if (!Token(&token) || token.size() != 16) return false;
  uint64_t bits = 0;
  int bad = 0;
  for (char c : token) {
    const int d = HexNibble(c);
    bad |= d;
    bits = (bits << 4) | static_cast<uint64_t>(d & 0xf);
  }
  if (bad < 0) return false;
  std::memcpy(out, &bits, sizeof *out);
  return true;
}

bool TokenScanner::AtEnd() {
  while (p_ < end_ && IsSpace(*p_)) ++p_;
  return p_ == end_;
}

}  // namespace grgad
