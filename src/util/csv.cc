#include "src/util/csv.h"

#include <cmath>
#include <cstdio>
#include <fstream>

#include "src/util/check.h"

namespace grgad {

CsvWriter::CsvWriter(std::vector<std::string> header)
    : header_(std::move(header)) {
  GRGAD_CHECK(!header_.empty());
}

void CsvWriter::AppendRow(const std::vector<std::string>& row) {
  GRGAD_CHECK_EQ(row.size(), header_.size());
  rows_.push_back(row);
}

void CsvWriter::AppendNumericRow(const std::vector<double>& row) {
  std::vector<std::string> cells;
  cells.reserve(row.size());
  for (double v : row) cells.push_back(FormatDouble(v));
  AppendRow(cells);
}

std::string CsvWriter::ToString() const {
  std::string out;
  auto emit_row = [&out](const std::vector<std::string>& row) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out += ',';
      out += CsvEscape(row[i]);
    }
    out += '\n';
  };
  emit_row(header_);
  for (const auto& row : rows_) emit_row(row);
  return out;
}

Status CsvWriter::WriteFile(const std::string& path) const {
  std::ofstream f(path, std::ios::out | std::ios::trunc);
  if (!f.is_open()) {
    return Status::IoError("cannot open for writing: " + path);
  }
  f << ToString();
  if (!f.good()) return Status::IoError("write failed: " + path);
  return Status::Ok();
}

std::string CsvEscape(const std::string& field) {
  bool needs_quote = false;
  for (char c : field) {
    if (c == ',' || c == '"' || c == '\n' || c == '\r') {
      needs_quote = true;
      break;
    }
  }
  if (!needs_quote) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

std::string FormatDouble(double v) {
  if (std::isnan(v)) return "nan";
  if (std::isinf(v)) return v > 0 ? "inf" : "-inf";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

}  // namespace grgad
