// Newline-delimited byte transport for the serving daemon (no third-party
// deps, POSIX only).
//
// Two pieces:
//   LineChannel       a line-framed duplex stream over a pair of file
//                     descriptors — stdin/stdout when `grgad serve` runs as
//                     a pipe child, or one accepted AF_UNIX connection.
//                     Reads poll a CancelToken so a SIGTERM-initiated drain
//                     interrupts a blocked read within one poll tick.
//   UnixServerSocket  a listening AF_UNIX socket whose Accept() polls the
//                     same way, plus ConnectUnixSocket() with a bounded
//                     connect-retry window for the `grgad query` client (the
//                     daemon may still be loading/training when the client
//                     starts).
//
// Threading: one reader at a time per channel; WriteLine is internally
// serialized so the daemon's response writer and error paths can share the
// channel.
#ifndef GRGAD_UTIL_TRANSPORT_H_
#define GRGAD_UTIL_TRANSPORT_H_

#include <mutex>
#include <string>

#include "src/util/cancel.h"
#include "src/util/status.h"

namespace grgad {

class LineChannel {
 public:
  /// Wraps the fd pair (read_fd may equal write_fd, e.g. a socket). With
  /// `own_fds` the destructor closes them (once, when equal). Writers
  /// should expect EPIPE as an IoError, not a signal: callers that serve
  /// untrusted peers must ignore SIGPIPE themselves.
  LineChannel(int read_fd, int write_fd, bool own_fds);
  ~LineChannel();

  LineChannel(const LineChannel&) = delete;
  LineChannel& operator=(const LineChannel&) = delete;

  /// Blocks for the next '\n'-terminated line. On success *eof is false and
  /// *line holds the line without its terminator. *eof true (still OK)
  /// means a clean end of stream — or `stop` fired, checked every ~50ms —
  /// with any unterminated trailing partial line returned first as a final
  /// line. IoError on read failure.
  Status ReadLine(std::string* line, bool* eof,
                  const CancelToken* stop = nullptr);

  /// Writes `line` plus '\n'. Atomic with respect to concurrent WriteLine
  /// calls. IoError on write failure (including a closed peer).
  Status WriteLine(const std::string& line);

 private:
  int read_fd_;
  int write_fd_;
  bool own_fds_;
  std::string buffer_;  ///< Bytes read past the last returned line.
  std::mutex write_mu_;
};

class UnixServerSocket {
 public:
  /// Binds and listens on `path`, replacing any stale socket file there.
  /// InvalidArgument when the path overflows sun_path (~107 bytes).
  static Result<UnixServerSocket> Listen(const std::string& path);

  ~UnixServerSocket();
  UnixServerSocket(UnixServerSocket&& other) noexcept;
  UnixServerSocket& operator=(UnixServerSocket&& other) noexcept;
  UnixServerSocket(const UnixServerSocket&) = delete;
  UnixServerSocket& operator=(const UnixServerSocket&) = delete;

  /// Waits for the next connection, polling `stop` every ~50ms. Returns the
  /// connected fd (caller owns it), or -1 — still OK — when `stop` fired.
  Result<int> Accept(const CancelToken* stop);

  const std::string& path() const { return path_; }

 private:
  UnixServerSocket(int fd, std::string path)
      : fd_(fd), path_(std::move(path)) {}
  void CloseAndUnlink();

  int fd_ = -1;
  std::string path_;
};

/// Connects to the daemon's socket, retrying refused/absent connections
/// until `timeout_seconds` elapses (the daemon trains before it listens).
/// Returns the connected fd; DeadlineExceeded when the window closes.
Result<int> ConnectUnixSocket(const std::string& path, double timeout_seconds);

}  // namespace grgad

#endif  // GRGAD_UTIL_TRANSPORT_H_
