// CSV table writer used by benches to export reproducible data series
// (t-SNE coordinates, heatmap cells, per-method result rows).
#ifndef GRGAD_UTIL_CSV_H_
#define GRGAD_UTIL_CSV_H_

#include <string>
#include <vector>

#include "src/util/status.h"

namespace grgad {

/// Accumulates rows in memory and writes an RFC4180-ish CSV file.
///
/// Values containing commas, quotes, or newlines are quoted and inner quotes
/// doubled. Row width is validated against the header on Append.
class CsvWriter {
 public:
  /// Creates a writer with the given column names.
  explicit CsvWriter(std::vector<std::string> header);

  /// Appends one row; must match the header width.
  void AppendRow(const std::vector<std::string>& row);

  /// Convenience: formats doubles with 6 significant digits.
  void AppendNumericRow(const std::vector<double>& row);

  /// Serializes header + rows.
  std::string ToString() const;

  /// Writes the table to `path`, creating parent dirs is NOT attempted.
  Status WriteFile(const std::string& path) const;

  size_t num_rows() const { return rows_.size(); }
  size_t num_cols() const { return header_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Escapes a single CSV field (exposed for tests).
std::string CsvEscape(const std::string& field);

/// Formats a double compactly ("0.734", "1.2e-05"); exposed for tests.
std::string FormatDouble(double v);

}  // namespace grgad

#endif  // GRGAD_UTIL_CSV_H_
