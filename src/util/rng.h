// Deterministic pseudo-random number generation.
//
// Every stochastic component in grgad takes an explicit 64-bit seed and draws
// from an Rng instance, so that datasets, model initializations, and sampled
// augmentations are exactly reproducible across runs and platforms. The
// generator is xoshiro256** seeded via SplitMix64 (the reference seeding
// procedure), chosen over std::mt19937 for speed and for a guaranteed stable
// stream across standard libraries.
#ifndef GRGAD_UTIL_RNG_H_
#define GRGAD_UTIL_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace grgad {

/// SplitMix64 step; used to expand a user seed into generator state.
uint64_t SplitMix64Next(uint64_t* state);

/// xoshiro256** PRNG with helper distributions.
///
/// All distribution helpers are implemented from first principles (no
/// std::*_distribution) so streams are identical across standard libraries.
class Rng {
 public:
  /// Seeds the generator; equal seeds yield equal streams.
  explicit Rng(uint64_t seed);

  /// Next raw 64-bit value.
  uint64_t NextU64();

  /// Uniform double in [0, 1).
  double Uniform();

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// Uniform integer in [0, n). Precondition: n > 0.
  uint64_t UniformInt(uint64_t n);

  /// Uniform integer in [lo, hi] inclusive. Precondition: lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Standard normal via Box–Muller (cached spare value).
  double Normal();

  /// Normal with the given mean and standard deviation.
  double Normal(double mean, double stddev);

  /// Bernoulli draw with success probability p.
  bool Bernoulli(double p);

  /// Poisson draw via inversion (suitable for small lambda).
  int Poisson(double lambda);

  /// Exponential draw with the given rate.
  double Exponential(double rate);

  /// Power-law-ish integer degree draw in [k_min, k_max] with exponent alpha,
  /// via inverse-CDF sampling of a continuous Pareto then rounding. Used by
  /// the scale-free transaction-graph generators.
  int PowerLaw(int k_min, int k_max, double alpha);

  /// Fisher–Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    if (v->empty()) return;
    for (size_t i = v->size() - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(UniformInt(i + 1));
      std::swap((*v)[i], (*v)[j]);
    }
  }

  /// Samples k distinct indices from [0, n) (k <= n), in random order.
  std::vector<size_t> SampleWithoutReplacement(size_t n, size_t k);

  /// Draws an index in [0, weights.size()) proportionally to weights.
  /// Precondition: at least one weight is positive.
  size_t WeightedIndex(const std::vector<double>& weights);

 private:
  uint64_t s_[4];
  bool has_spare_normal_ = false;
  double spare_normal_ = 0.0;
};

}  // namespace grgad

#endif  // GRGAD_UTIL_RNG_H_
