#include "src/util/thread_pool.h"

#include <cstdlib>

#include "src/util/check.h"
#include "src/util/parallel.h"

namespace grgad {

namespace {

// Marks pool workers and threads currently inside RunChunks, so nested
// ParallelFor calls degrade to inline execution instead of deadlocking on the
// (single-job) pool.
thread_local bool t_in_parallel_region = false;

std::atomic<int> g_degree_override{0};

int DefaultDegree() {
  if (const char* env = std::getenv("GRGAD_THREADS")) {
    int v = std::atoi(env);
    if (v >= 1) return v;
  }
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

// The global pool is held behind a mutex so the test-only degree override can
// tear it down and rebuild it. Normal code takes this lock once per parallel
// region, which is noise next to the cv notify.
std::mutex g_pool_mu;
std::unique_ptr<ThreadPool> g_pool;        // Guarded by g_pool_mu.
int g_pool_degree = -1;                    // Degree the pool was built for.

}  // namespace

int ParallelismDegree() {
  const int forced = g_degree_override.load(std::memory_order_acquire);
  if (forced >= 1) return forced;
  static const int degree = DefaultDegree();
  return degree;
}

ThreadPool::ThreadPool(int num_workers) {
  GRGAD_CHECK_GE(num_workers, 0);
  workers_.reserve(num_workers);
  for (int i = 0; i < num_workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::WorkerLoop() {
  t_in_parallel_region = true;
  uint64_t last_seq = 0;
  for (;;) {
    std::shared_ptr<Job> job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [&] {
        return shutdown_ || (job_ != nullptr && job_seq_ != last_seq);
      });
      if (shutdown_) return;
      job = job_;
      last_seq = job_seq_;
    }
    RunJobChunks(*job);
  }
}

void ThreadPool::RunJobChunks(Job& job) {
  for (;;) {
    const size_t c = job.next.fetch_add(1, std::memory_order_relaxed);
    if (c >= job.num_chunks) return;
    (*job.fn)(c);
    if (job.done.fetch_add(1, std::memory_order_acq_rel) + 1 ==
        job.num_chunks) {
      // Lock before notifying so the completion wait cannot miss the wakeup.
      std::lock_guard<std::mutex> lock(done_mu_);
      done_cv_.notify_all();
    }
  }
}

void ThreadPool::RunChunks(size_t num_chunks,
                           const std::function<void(size_t)>& fn) {
  if (num_chunks == 0) return;
  std::unique_lock<std::mutex> dispatch(dispatch_mu_, std::try_to_lock);
  if (workers_.empty() || !dispatch.owns_lock() || t_in_parallel_region) {
    // No lanes, pool busy with another caller's job, or nested call: run
    // inline. Chunk ranges are identical either way, so results don't change.
    for (size_t c = 0; c < num_chunks; ++c) fn(c);
    return;
  }
  auto job = std::make_shared<Job>();
  job->fn = &fn;
  job->num_chunks = num_chunks;
  {
    std::lock_guard<std::mutex> lock(mu_);
    job_ = job;
    ++job_seq_;
  }
  cv_.notify_all();
  t_in_parallel_region = true;
  RunJobChunks(*job);
  t_in_parallel_region = false;
  {
    std::unique_lock<std::mutex> lock(done_mu_);
    done_cv_.wait(lock, [&] {
      return job->done.load(std::memory_order_acquire) == job->num_chunks;
    });
  }
  {
    // Drop the pool's reference so the job (and its pointer into the caller's
    // frame) cannot outlive this call. Workers that already copied the
    // shared_ptr have finished: done == num_chunks counts completed bodies,
    // and stragglers only touch the atomic counters of the (still allocated)
    // Job before bailing out on the seq check next round.
    std::lock_guard<std::mutex> lock(mu_);
    if (job_ == job) job_.reset();
  }
}

bool ThreadPool::InParallelRegion() { return t_in_parallel_region; }

ThreadPool& ThreadPool::Global() {
  std::lock_guard<std::mutex> lock(g_pool_mu);
  const int degree = ParallelismDegree();
  if (!g_pool || g_pool_degree != degree) {
    g_pool.reset();  // Join old workers before starting replacements.
    g_pool = std::make_unique<ThreadPool>(degree - 1);
    g_pool_degree = degree;
  }
  return *g_pool;
}

void SetParallelismDegree(int degree) {
  GRGAD_CHECK_GE(degree, 1);
  internal::SetParallelismDegreeForTest(degree);
}

namespace internal {

void SetParallelismDegreeForTest(int degree) {
  GRGAD_CHECK_GE(degree, 0);
  g_degree_override.store(degree, std::memory_order_release);
  // Rebuild eagerly so worker count matches the new degree.
  ThreadPool::Global();
}

}  // namespace internal

}  // namespace grgad
