#include "src/util/retry.h"

#include <algorithm>
#include <chrono>
#include <thread>

namespace grgad {

double BackoffSeconds(const RetryPolicy& policy, int attempt, Rng* rng) {
  double backoff = policy.initial_backoff_seconds;
  for (int i = 0; i < attempt && backoff < policy.max_backoff_seconds; ++i) {
    backoff *= policy.backoff_multiplier;
  }
  backoff = std::min(backoff, policy.max_backoff_seconds);
  if (policy.jitter_fraction > 0.0 && rng != nullptr) {
    backoff *= 1.0 + rng->Uniform(-policy.jitter_fraction,
                                  policy.jitter_fraction);
  }
  return std::max(backoff, 0.0);
}

bool DefaultRetryable(const Status& status) {
  return status.code() == StatusCode::kIoError;
}

Retryer::Retryer(RetryPolicy policy)
    : policy_(policy),
      rng_(policy.jitter_seed),
      sleeper_([](double seconds) {
        std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
      }),
      retryable_(DefaultRetryable) {}

Status Retryer::Run(const std::function<Status()>& op) {
  Status status = op();
  for (int attempt = 1;
       attempt < policy_.max_attempts && !status.ok() && retryable_(status);
       ++attempt) {
    ++attempts_;
    sleeper_(BackoffSeconds(policy_, attempt - 1, &rng_));
    status = op();
  }
  ++attempts_;
  return status;
}

}  // namespace grgad
