#include "src/core/evaluation.h"

#include <cmath>
#include <cstdio>

#include "src/metrics/classification.h"
#include "src/metrics/completeness.h"
#include "src/util/check.h"

namespace grgad {

GroupEvaluation EvaluateGroups(const Dataset& dataset,
                               const std::vector<ScoredGroup>& predictions,
                               const EvaluationOptions& options) {
  GroupEvaluation eval;
  eval.num_candidates = static_cast<int>(predictions.size());
  if (predictions.empty()) return eval;

  std::vector<std::vector<int>> groups;
  std::vector<double> scores;
  groups.reserve(predictions.size());
  for (const ScoredGroup& p : predictions) {
    groups.push_back(p.nodes);
    scores.push_back(p.score);
  }
  // Group-wise ground-truth labels by Jaccard matching.
  const std::vector<int> match =
      MatchGroups(dataset.anomaly_groups, groups, options.match_jaccard);
  std::vector<int> y_true(groups.size(), 0);
  for (size_t i = 0; i < groups.size(); ++i) y_true[i] = match[i] >= 0;

  eval.auc = RocAuc(y_true, scores);
  eval.f1 = F1AtTrueContamination(y_true, scores);

  // Predicted-anomalous set: Definition 1's s_i > τ with the label-free
  // mean + z·std threshold (the same rule AS-GAE applies to node scores).
  double mean = 0.0;
  for (double s : scores) mean += s;
  mean /= static_cast<double>(scores.size());
  double var = 0.0;
  for (double s : scores) var += (s - mean) * (s - mean);
  const double stddev = std::sqrt(var / static_cast<double>(scores.size()));
  const double tau = mean + options.z_threshold * stddev;
  std::vector<std::vector<int>> predicted_anomalous;
  for (size_t i = 0; i < groups.size(); ++i) {
    if (scores[i] > tau) predicted_anomalous.push_back(groups[i]);
  }
  // Degenerate fallback (constant scores): every candidate is the
  // prediction, as for baselines whose outputs are all "anomalous".
  const auto& cr_set =
      predicted_anomalous.empty() ? groups : predicted_anomalous;
  eval.cr = CompletenessRatio(dataset.anomaly_groups, cr_set);
  eval.num_predicted_anomalous = static_cast<int>(predicted_anomalous.size());
  double total_size = 0.0;
  for (const auto& g : cr_set) total_size += static_cast<double>(g.size());
  eval.avg_predicted_size = total_size / static_cast<double>(cr_set.size());
  return eval;
}

AggregatedEvaluation Aggregate(const std::vector<GroupEvaluation>& runs) {
  AggregatedEvaluation out;
  if (runs.empty()) return out;
  std::vector<double> cr, f1, auc, size;
  for (const GroupEvaluation& r : runs) {
    cr.push_back(r.cr);
    f1.push_back(r.f1);
    auc.push_back(r.auc);
    size.push_back(r.avg_predicted_size);
  }
  out.cr_mean = Mean(cr);
  out.cr_stderr = StdError(cr);
  out.f1_mean = Mean(f1);
  out.f1_stderr = StdError(f1);
  out.auc_mean = Mean(auc);
  out.auc_stderr = StdError(auc);
  out.size_mean = Mean(size);
  return out;
}

std::string FormatCell(double mean, double stderr_value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.2f±%.2f", mean, stderr_value);
  return buf;
}

}  // namespace grgad
