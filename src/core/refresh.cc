#include "src/core/refresh.h"

#include <numeric>
#include <utility>

#include "src/util/fault.h"
#include "src/util/logging.h"

namespace grgad {
namespace {

bool Stopped(const RunContext* ctx) {
  return ctx != nullptr && ctx->cancelled();
}

/// Stop status typed by why the token fired (mirrors the stage layer).
Status StopStatus(const RunContext* ctx) {
  const StopReason reason =
      ctx != nullptr ? ctx->stop_reason() : StopReason::kCancelled;
  switch (reason) {
    case StopReason::kDeadlineExceeded:
      return Status::DeadlineExceeded("deadline exceeded during refresh");
    case StopReason::kResourceExhausted:
      return Status::ResourceExhausted(
          "resource budget exhausted during refresh");
    default:
      return Status::Cancelled("run cancelled during refresh");
  }
}

}  // namespace

Status RefreshArtifacts(const Graph& g, const TpGrGadOptions& options,
                        const std::vector<int>& dirty_indices,
                        RefreshState* state, PipelineArtifacts* artifacts,
                        RunContext* ctx, RefreshStats* stats) {
  if (Stopped(ctx)) return StopStatus(ctx);
  if (Status fault = FaultInjector::Global().Check("stage/refresh",
                                                   StatusCode::kInternal);
      !fault.ok()) {
    state->primed = false;
    return fault;
  }
  StageScope scope(ctx, "refresh");
  const std::vector<int>& anchors = artifacts->anchors;

  // Unprimed (first refresh, or recovering from an aborted one): every
  // anchor is dirty regardless of what the tracker reported.
  std::vector<int> all;
  const bool full = !state->primed;
  if (full) {
    all.resize(anchors.size());
    std::iota(all.begin(), all.end(), 0);
  }
  const std::vector<int>& dirty = full ? all : dirty_indices;

  GroupSamplerOptions sampler_options = options.sampler;
  if (ctx != nullptr) sampler_options.cancel = ctx->cancel_token();
  GroupSampler sampler(sampler_options);
  sampler.ResampleAnchors(g, anchors, dirty, &state->per_anchor);
  if (Stopped(ctx)) {
    // The cache may hold a partial fan-out; do not trust it next time.
    state->primed = false;
    return StopStatus(ctx);
  }
  std::vector<std::vector<int>> groups =
      sampler.FinalizeCandidates(g, anchors, state->per_anchor);

  // Pooled embedding (see the header: TPGCL is global, refresh is local) +
  // the configured detector, seeded exactly like a full pipeline run.
  TpGrGadOptions pooled_options = options;
  pooled_options.disable_tpgcl = true;
  auto embedded = RunEmbeddingStage(g, groups, pooled_options, ctx);
  if (!embedded.ok()) {
    state->primed = false;
    return embedded.status();
  }
  auto scored = RunScoringStage(embedded.value().embeddings, groups,
                                pooled_options, ctx);
  if (!scored.ok()) {
    state->primed = false;
    return scored.status();
  }

  artifacts->candidate_groups = std::move(groups);
  artifacts->group_embeddings = std::move(embedded.value().embeddings);
  artifacts->group_scores = std::move(scored.value().scores);
  artifacts->scored_groups = std::move(scored.value().scored_groups);
  state->primed = true;

  if (stats != nullptr) {
    stats->dirty_anchors = dirty.size();
    stats->reused_anchors = anchors.size() - dirty.size();
    stats->num_groups = artifacts->candidate_groups.size();
    stats->full = full;
  }
  GRGAD_LOG(kDebug) << "refresh: " << dirty.size() << "/" << anchors.size()
                    << " anchors resampled, "
                    << artifacts->candidate_groups.size() << " groups";
  return Status::Ok();
}

}  // namespace grgad
