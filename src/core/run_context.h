// Per-run execution context threaded through every pipeline stage.
//
// A RunContext carries the three cross-cutting concerns the Engine stages
// share: cooperative cancellation (a CancelToken copied into the stage
// options so training loops poll it once per epoch), a progress callback
// fired when a stage starts and finishes, and per-stage wall-time telemetry
// accumulated across the run. Every stage entry point accepts a nullable
// RunContext*; passing nullptr runs the stage with no context overhead.
//
// Threading: the telemetry surface is thread-safe — concurrent StageScope
// brackets and RecordSubStage calls from different threads (the serving
// daemon's pattern) interleave without racing, and stage_timings() returns
// a consistent snapshot. RequestCancel() stays safe from any thread and
// from signal handlers. The remaining mutable state (on_progress, profile)
// is configure-before-use: set it before handing the context to stages and
// leave it alone while they run; on_progress itself must be thread-safe if
// stages run concurrently, since it fires from whichever thread finishes a
// stage.
#ifndef GRGAD_CORE_RUN_CONTEXT_H_
#define GRGAD_CORE_RUN_CONTEXT_H_

#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "src/util/cancel.h"
#include "src/util/timer.h"

namespace grgad {

/// Wall-clock seconds spent in one stage, in execution order.
struct StageTiming {
  std::string stage;
  double seconds = 0.0;
};

/// Progress notification: one event when a stage starts (seconds == 0) and
/// one when it finishes (seconds = stage wall time).
struct StageEvent {
  std::string stage;
  bool finished = false;
  double seconds = 0.0;
};

class RunContext {
 public:
  RunContext() = default;

  /// The run's cancellation token; copies handed to stage options alias it.
  const CancelToken& cancel_token() const { return cancel_; }

  /// Requests cooperative cancellation. Safe from any thread; the run
  /// unwinds at the next per-epoch / per-stage poll with StatusCode::
  /// kCancelled.
  void RequestCancel() { cancel_.RequestCancel(); }
  bool cancelled() const { return cancel_.cancelled(); }

  /// Arms a monotonic deadline `seconds` from now on the run's token. The
  /// deadline is polled at exactly the cancellation poll points (training
  /// epochs, anchor chunks, detector fits, stage boundaries); past it the
  /// run unwinds with StatusCode::kDeadlineExceeded.
  void SetDeadlineAfter(double seconds) { cancel_.SetDeadlineAfter(seconds); }

  /// Why the run stopped (kNone while still running): explicit cancel,
  /// deadline expiry, or a resource governor (arena byte budget).
  StopReason stop_reason() const { return cancel_.stop_reason(); }

  /// Optional observer, invoked synchronously on the thread running the
  /// stage (always outside the telemetry lock). Configure before handing
  /// the context to stages; must itself be thread-safe when stages run
  /// concurrently on this context.
  std::function<void(const StageEvent&)> on_progress;

  /// Opt into fine-grained sub-stage telemetry: stages that do distinct
  /// phases of work (currently scoring: "scoring/neighbors",
  /// "scoring/detect") bracket them with extra StageScopes, which land in
  /// stage_timings() alongside the top-level stages. Off by default so
  /// stage_timings() stays one-entry-per-stage for existing consumers; the
  /// CLI's --profile flag turns it on.
  bool profile = false;

  /// Snapshot of the telemetry for every finished stage, in completion
  /// order. Stages of repeated runs through the same context append (the
  /// context outlives a single RunPipeline call by design, e.g. run +
  /// rescore). Returns a copy so the snapshot stays consistent while other
  /// threads keep recording.
  std::vector<StageTiming> stage_timings() const;

  /// Records an externally measured sub-stage timing (e.g. the candidate
  /// stage's "candidates/search" phase, clocked inside the sampler where a
  /// StageScope cannot reach) and fires the finished progress event. Safe
  /// from any thread.
  void RecordSubStage(std::string stage, double seconds);

  /// Sum of stage_timings() seconds.
  double TotalSeconds() const;

 private:
  friend class StageScope;

  void AppendTiming(const std::string& stage, double seconds);

  CancelToken cancel_;
  mutable std::mutex timings_mu_;
  std::vector<StageTiming> timings_;
};

/// RAII stage bracket: emits the started event on construction and records
/// timing + emits the finished event on destruction. Null-context safe.
class StageScope {
 public:
  StageScope(RunContext* ctx, std::string stage);
  ~StageScope();

  StageScope(const StageScope&) = delete;
  StageScope& operator=(const StageScope&) = delete;

 private:
  RunContext* ctx_;
  std::string stage_;
  Timer timer_;
};

}  // namespace grgad

#endif  // GRGAD_CORE_RUN_CONTEXT_H_
