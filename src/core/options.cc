#include "src/core/options.h"

#include <cerrno>
#include <climits>
#include <cmath>
#include <cstdlib>

namespace grgad {
namespace {

Status BadValue(const std::string& key, const std::string& value,
                const char* expected) {
  return Status::InvalidArgument("option " + key + ": cannot parse '" + value +
                                 "' as " + expected);
}

Result<long long> ParseIntValue(const std::string& key,
                                const std::string& value) {
  errno = 0;
  char* end = nullptr;
  const long long parsed = std::strtoll(value.c_str(), &end, 10);
  if (end == value.c_str() || *end != '\0' || errno == ERANGE) {
    return BadValue(key, value, "an integer");
  }
  return parsed;
}

}  // namespace

bool ParseUint64Text(const std::string& text, uint64_t* out) {
  errno = 0;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(text.c_str(), &end, 10);
  // strtoull silently wraps "-1" to 2^64-1; reject signs outright.
  if (end == text.c_str() || *end != '\0' || errno == ERANGE ||
      text.find('-') != std::string::npos) {
    return false;
  }
  *out = parsed;
  return true;
}

bool ParseDoubleText(const std::string& text, double* out) {
  errno = 0;
  char* end = nullptr;
  const double parsed = std::strtod(text.c_str(), &end);
  if (end == text.c_str() || *end != '\0') return false;
  // Overflow to +-inf is a typo, not a configuration; underflow to
  // 0/denormal is accepted.
  if (errno == ERANGE && std::isinf(parsed)) return false;
  *out = parsed;
  return true;
}

void OptionMap::Add(const std::string& key, int* field) {
  setters_[key] = [key, field](const std::string& value) {
    auto parsed = ParseIntValue(key, value);
    if (!parsed.ok()) return parsed.status();
    if (parsed.value() < INT_MIN || parsed.value() > INT_MAX) {
      return BadValue(key, value, "an int");
    }
    *field = static_cast<int>(parsed.value());
    return Status::Ok();
  };
}

void OptionMap::Add(const std::string& key, double* field) {
  setters_[key] = [key, field](const std::string& value) {
    if (!ParseDoubleText(value, field)) {
      return BadValue(key, value, "a finite number");
    }
    return Status::Ok();
  };
}

void OptionMap::Add(const std::string& key, bool* field) {
  setters_[key] = [key, field](const std::string& value) {
    if (value == "true" || value == "1") {
      *field = true;
    } else if (value == "false" || value == "0") {
      *field = false;
    } else {
      return BadValue(key, value, "a bool (true/false/1/0)");
    }
    return Status::Ok();
  };
}

void OptionMap::Add(const std::string& key, uint64_t* field) {
  setters_[key] = [key, field](const std::string& value) {
    if (!ParseUint64Text(value, field)) {
      return BadValue(key, value, "an unsigned integer");
    }
    return Status::Ok();
  };
}

void OptionMap::Add(const std::string& key, int64_t* field) {
  setters_[key] = [key, field](const std::string& value) {
    auto parsed = ParseIntValue(key, value);
    if (!parsed.ok()) return parsed.status();
    *field = parsed.value();
    return Status::Ok();
  };
}

void OptionMap::Add(const std::string& key,
                    std::function<Status(const std::string&)> setter) {
  setters_[key] = std::move(setter);
}

Status OptionMap::Set(const std::string& key, const std::string& value) const {
  const auto it = setters_.find(key);
  if (it == setters_.end()) {
    std::string known;
    for (const auto& [k, unused] : setters_) {
      if (!known.empty()) known += ", ";
      known += k;
    }
    return Status::InvalidArgument("unknown option '" + key +
                                   "'; known options: " + known);
  }
  return it->second(value);
}

Status OptionMap::Apply(const std::string& assignment) const {
  const size_t eq = assignment.find('=');
  if (eq == std::string::npos || eq == 0) {
    return Status::InvalidArgument("option override '" + assignment +
                                   "' is not of the form key=value");
  }
  return Set(assignment.substr(0, eq), assignment.substr(eq + 1));
}

Status OptionMap::ApplyAll(const std::vector<std::string>& assignments) const {
  for (const std::string& assignment : assignments) {
    GRGAD_RETURN_IF_ERROR(Apply(assignment));
  }
  return Status::Ok();
}

std::vector<std::string> OptionMap::Keys() const {
  std::vector<std::string> keys;
  keys.reserve(setters_.size());
  for (const auto& [key, unused] : setters_) keys.push_back(key);
  return keys;
}

}  // namespace grgad
