#include "src/core/pipeline.h"

#include "src/util/logging.h"

namespace grgad {

void TpGrGadOptions::ReseedStages() {
  mh_gae.base.seed = seed ^ 0x1;
  tpgcl.seed = seed ^ 0x2;
}

TpGrGad::TpGrGad(TpGrGadOptions options) : options_(options) {}

PipelineArtifacts TpGrGad::Run(const Graph& g) const {
  GRGAD_CHECK(g.has_attributes());
  PipelineArtifacts artifacts;

  // --- Stage 1: anchor localization (MH-GAE). ---
  MhGae mh_gae(options_.mh_gae);
  MhGaeResult gae = mh_gae.FitAnchors(g);
  artifacts.anchors = gae.anchors;
  artifacts.gae_node_errors = std::move(gae.gae.node_errors);
  GRGAD_LOG(kDebug) << "pipeline: " << artifacts.anchors.size()
                    << " anchors selected";

  // --- Stage 2: candidate group sampling (Alg. 1). ---
  GroupSampler sampler(options_.sampler);
  artifacts.candidate_groups = sampler.Sample(g, artifacts.anchors);
  GRGAD_LOG(kDebug) << "pipeline: " << artifacts.candidate_groups.size()
                    << " candidate groups";
  if (artifacts.candidate_groups.size() < 2) {
    // Not enough candidates to contrast; emit them unscored.
    for (const auto& group : artifacts.candidate_groups) {
      artifacts.scored_groups.push_back({group, 0.0});
    }
    return artifacts;
  }

  // --- Stage 3: group embeddings (TPGCL, or raw mean pooling for the
  // Table V ablation). ---
  if (options_.disable_tpgcl) {
    const int m = static_cast<int>(artifacts.candidate_groups.size());
    Matrix pooled(m, g.attr_dim());
    for (int i = 0; i < m; ++i) {
      const auto& group = artifacts.candidate_groups[i];
      for (int v : group) {
        const double* row = g.attributes().RowPtr(v);
        for (size_t j = 0; j < g.attr_dim(); ++j) pooled(i, j) += row[j];
      }
      for (size_t j = 0; j < g.attr_dim(); ++j) {
        pooled(i, j) /= static_cast<double>(group.size());
      }
    }
    artifacts.group_embeddings = std::move(pooled);
  } else {
    Tpgcl tpgcl(options_.tpgcl);
    TpgclResult result = tpgcl.FitEmbed(g, artifacts.candidate_groups);
    artifacts.group_embeddings = std::move(result.embeddings);
    artifacts.tpgcl_loss_history = std::move(result.loss_history);
  }

  // --- Stage 4: outlier scoring over group embeddings. ---
  auto detector = MakeOutlierDetector(options_.detector, options_.seed ^ 0x3);
  GRGAD_CHECK(detector != nullptr);
  artifacts.group_scores = detector->FitScore(artifacts.group_embeddings);

  artifacts.scored_groups.reserve(artifacts.candidate_groups.size());
  for (size_t i = 0; i < artifacts.candidate_groups.size(); ++i) {
    artifacts.scored_groups.push_back(
        {artifacts.candidate_groups[i], artifacts.group_scores[i]});
  }
  return artifacts;
}

std::vector<ScoredGroup> TpGrGad::DetectGroups(const Graph& g) const {
  return Run(g).scored_groups;
}

}  // namespace grgad
