#include "src/core/pipeline.h"

#include "src/util/logging.h"

namespace grgad {

TpGrGad::TpGrGad(TpGrGadOptions options) : options_(std::move(options)) {
  // ReseedStages() footgun fix: callers who set `seed` but forgot to call
  // ReseedStages() used to silently train every stage with the default
  // stage seeds. Propagate automatically — but only into stage seeds still
  // holding their defaults, so explicit per-stage seeding wins, and only
  // when `seed` itself was changed, so default-options runs reproduce the
  // historical output bit-for-bit.
  const TpGrGadOptions defaults;
  if (options_.seed != defaults.seed) {
    if (options_.mh_gae.base.seed == defaults.mh_gae.base.seed) {
      options_.mh_gae.base.seed = options_.seed ^ 0x1;
    }
    if (options_.tpgcl.seed == defaults.tpgcl.seed) {
      options_.tpgcl.seed = options_.seed ^ 0x2;
    }
  }
}

PipelineArtifacts TpGrGad::Run(const Graph& g) const {
  GRGAD_CHECK(g.has_attributes());
  PipelineArtifacts artifacts;
  const Status status = RunPipelineInto(g, options_, nullptr, &artifacts);
  // FailedPrecondition (no anchors / nothing to contrast) keeps the
  // historical contract: return whatever the stages produced, unscored.
  if (!status.ok() && status.code() != StatusCode::kFailedPrecondition) {
    GRGAD_LOG(kError) << "TpGrGad::Run: " << status.ToString();
    GRGAD_CHECK(status.ok());
  }
  return artifacts;
}

Result<PipelineArtifacts> TpGrGad::TryRun(const Graph& g,
                                          RunContext* ctx) const {
  return RunPipeline(g, options_, ctx);
}

std::vector<ScoredGroup> TpGrGad::DetectGroups(const Graph& g) const {
  return Run(g).scored_groups;
}

}  // namespace grgad
