// The Gr-GAD method interface of Definition 1: F(G) -> {C, S}.
#ifndef GRGAD_CORE_GROUP_DETECTOR_H_
#define GRGAD_CORE_GROUP_DETECTOR_H_

#include <string>
#include <vector>

#include "src/core/types.h"
#include "src/graph/graph.h"

namespace grgad {

/// A group-level anomaly detector: consumes an attributed graph, returns
/// candidate groups with anomaly scores (higher = more anomalous). Callers
/// threshold the scores (Definition 1's τ) or rank them directly.
class GroupDetector {
 public:
  virtual ~GroupDetector() = default;

  /// Runs the full method on `g`.
  virtual std::vector<ScoredGroup> DetectGroups(const Graph& g) const = 0;

  /// Identifier used in bench tables ("tp-grgad", "dominant", ...).
  virtual std::string Name() const = 0;
};

}  // namespace grgad

#endif  // GRGAD_CORE_GROUP_DETECTOR_H_
