// String-keyed option overrides ("tpgcl.epochs=30") for benches, tests, and
// the grgad CLI.
//
// An OptionMap binds dotted string keys to fields of a live options struct;
// Apply() then parses "key=value" assignments into those fields with typed
// validation. Each method in the registry exposes its own binding (see
// method_registry.h), so callers configure any method entirely with
// strings — no hand-wired per-struct setup. Unknown keys and malformed
// values come back as InvalidArgument listing what went wrong.
#ifndef GRGAD_CORE_OPTIONS_H_
#define GRGAD_CORE_OPTIONS_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "src/util/status.h"

namespace grgad {

/// Strict numeric text parsing shared by OptionMap and the CLI: the whole
/// string must parse, overflow is rejected, and (for the unsigned variant)
/// so are negative values that strtoull would silently wrap. Returns false
/// on any failure, leaving *out untouched.
bool ParseUint64Text(const std::string& text, uint64_t* out);
bool ParseDoubleText(const std::string& text, double* out);

/// Key -> typed-setter table over a borrowed options struct. The struct
/// must outlive the map.
class OptionMap {
 public:
  /// Binds `key` to a field; Set() parses the value with the matching type.
  void Add(const std::string& key, int* field);
  void Add(const std::string& key, double* field);
  void Add(const std::string& key, bool* field);
  void Add(const std::string& key, uint64_t* field);  // also covers size_t
  void Add(const std::string& key, int64_t* field);
  /// Binds `key` to a custom parser (enums etc.).
  void Add(const std::string& key,
           std::function<Status(const std::string&)> setter);

  /// Parses `value` into the field bound to `key`. InvalidArgument for
  /// unknown keys (message lists the known ones) or unparsable values.
  Status Set(const std::string& key, const std::string& value) const;

  /// Applies one "key=value" assignment.
  Status Apply(const std::string& assignment) const;

  /// Applies assignments in order; stops at the first error.
  Status ApplyAll(const std::vector<std::string>& assignments) const;

  /// All bound keys, sorted.
  std::vector<std::string> Keys() const;

 private:
  std::map<std::string, std::function<Status(const std::string&)>> setters_;
};

}  // namespace grgad

#endif  // GRGAD_CORE_OPTIONS_H_
