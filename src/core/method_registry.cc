#include "src/core/method_registry.h"

#include "src/baselines/as_gae.h"
#include "src/baselines/deepfd.h"
#include "src/baselines/group_extraction.h"
#include "src/core/pipeline.h"
#include "src/gae/comga.h"
#include "src/gae/deep_ae.h"
#include "src/gae/dominant.h"

namespace grgad {
namespace {

// Per-method RNG decorrelation, identical to the constants the bench
// harness has always used, so registry-built methods reproduce historical
// outputs bit-for-bit.
constexpr uint64_t kDeepAeSeedXor = 0x10;
constexpr uint64_t kComGaSeedXor = 0x20;
constexpr uint64_t kDeepFdSeedXor = 0x30;
constexpr uint64_t kAsGaeSeedXor = 0x40;

void BindGaeOptions(const std::string& prefix, GaeOptions* o, OptionMap* map) {
  map->Add(prefix + "hidden_dim", &o->hidden_dim);
  map->Add(prefix + "embed_dim", &o->embed_dim);
  map->Add(prefix + "epochs", &o->epochs);
  map->Add(prefix + "lr", &o->lr);
  map->Add(prefix + "weight_decay", &o->weight_decay);
  map->Add(prefix + "lambda", &o->lambda);
  map->Add(prefix + "neg_per_pos", &o->neg_per_pos);
  map->Add(prefix + "max_pairs", &o->max_pairs);
  map->Add(prefix + "power_row_cap", &o->power_row_cap);
  map->Add(prefix + "graphsnn_lambda", &o->graphsnn_lambda);
  map->Add(prefix + "arena_byte_budget", &o->arena_byte_budget);
  map->Add(prefix + "seed", &o->seed);
  map->Add(prefix + "target", [key = prefix + "target", o](
                                  const std::string& value) {
    if (!ParseReconTarget(value, &o->target)) {
      return Status::InvalidArgument("option " + key + ": unknown target '" +
                                     value + "' (A, A^3, A^5, A^7, A~)");
    }
    return Status::Ok();
  });
}

void BindExtractionOptions(GroupExtractionOptions* o, OptionMap* map) {
  map->Add("extraction.contamination", &o->contamination);
  map->Add("extraction.keep_singletons", &o->keep_singletons);
  map->Add("extraction.max_group_size", &o->max_group_size);
}

void BindAugmentation(const std::string& key, AugmentationKind* field,
                      OptionMap* map) {
  map->Add(key, [key, field](const std::string& value) {
    if (!ParseAugmentationKind(value, field)) {
      return Status::InvalidArgument("option " + key +
                                     ": unknown augmentation '" + value +
                                     "' (PBA, PPA, ND, ER, FM)");
    }
    return Status::Ok();
  });
}

}  // namespace

void BindTpGrGadOptions(TpGrGadOptions* o, OptionMap* map) {
  // Pipeline-level knobs. "seed" re-propagates into the stage seeds the way
  // TpGrGad's constructor does: only into seeds still tracking the previous
  // pipeline seed (or their defaults), so explicit stage-seed overrides are
  // never clobbered regardless of the order they appear in.
  map->Add("seed", [o](const std::string& value) {
    uint64_t parsed = 0;
    OptionMap seed_map;
    seed_map.Add("seed", &parsed);
    GRGAD_RETURN_IF_ERROR(seed_map.Set("seed", value));
    const uint64_t old_seed = o->seed;
    const TpGrGadOptions defaults;
    o->seed = parsed;
    if (o->mh_gae.base.seed == (old_seed ^ 0x1) ||
        o->mh_gae.base.seed == defaults.mh_gae.base.seed) {
      o->mh_gae.base.seed = parsed ^ 0x1;
    }
    if (o->tpgcl.seed == (old_seed ^ 0x2) ||
        o->tpgcl.seed == defaults.tpgcl.seed) {
      o->tpgcl.seed = parsed ^ 0x2;
    }
    return Status::Ok();
  });
  map->Add("detector", [o](const std::string& value) {
    if (!ParseDetectorKind(value, &o->detector)) {
      return Status::InvalidArgument("option detector: unknown kind '" +
                                     value + "'");
    }
    return Status::Ok();
  });
  map->Add("disable_tpgcl", &o->disable_tpgcl);
  map->Add("serve.prewarm_workspaces", &o->serve_prewarm_workspaces);
  map->Add("serve.wal_sync_every", &o->serve_wal_sync_every);
  map->Add("serve.snapshot_every_mutations",
           &o->serve_snapshot_every_mutations);

  BindGaeOptions("mh_gae.", &o->mh_gae.base, map);
  map->Add("mh_gae.anchor_fraction", &o->mh_gae.anchor_fraction);
  map->Add("mh_gae.max_anchors", &o->mh_gae.max_anchors);

  map->Add("sampler.tree_fanout", &o->sampler.tree_fanout);
  map->Add("sampler.max_paths_per_anchor", &o->sampler.max_paths_per_anchor);
  map->Add("sampler.min_group_size", &o->sampler.min_group_size);
  map->Add("sampler.max_group_size", &o->sampler.max_group_size);
  map->Add("sampler.cycle_max_len", &o->sampler.cycle_max_len);
  map->Add("sampler.max_cycles_per_anchor",
           &o->sampler.max_cycles_per_anchor);
  map->Add("sampler.cycle_max_steps", &o->sampler.cycle_max_steps);
  map->Add("sampler.pair_radius", &o->sampler.pair_radius);
  map->Add("sampler.max_groups", &o->sampler.max_groups);
  map->Add("sampler.seed", &o->sampler.seed);
  map->Add("sampler.attribute_cost_eps", &o->sampler.attribute_cost_eps);
  map->Add("sampler.graphsnn_cost_eps", &o->sampler.graphsnn_cost_eps);
  map->Add("sampler.include_anchor_components",
           &o->sampler.include_anchor_components);
  map->Add("sampler.path_mode", [o](const std::string& value) {
    if (value == "unweighted") {
      o->sampler.path_mode = PathSearchMode::kUnweighted;
    } else if (value == "attribute") {
      o->sampler.path_mode = PathSearchMode::kAttributeDistance;
    } else if (value == "graphsnn") {
      o->sampler.path_mode = PathSearchMode::kGraphSnnWeighted;
    } else {
      return Status::InvalidArgument(
          "option sampler.path_mode: unknown mode '" + value +
          "' (unweighted, attribute, graphsnn)");
    }
    return Status::Ok();
  });

  map->Add("tpgcl.hidden_dim", &o->tpgcl.hidden_dim);
  map->Add("tpgcl.embed_dim", &o->tpgcl.embed_dim);
  map->Add("tpgcl.mine_hidden", &o->tpgcl.mine_hidden);
  map->Add("tpgcl.epochs", &o->tpgcl.epochs);
  map->Add("tpgcl.lr", &o->tpgcl.lr);
  map->Add("tpgcl.neg_per_sample", &o->tpgcl.neg_per_sample);
  map->Add("tpgcl.arena_byte_budget", &o->tpgcl.arena_byte_budget);
  map->Add("tpgcl.seed", &o->tpgcl.seed);
  BindAugmentation("tpgcl.positive_aug", &o->tpgcl.positive_aug, map);
  BindAugmentation("tpgcl.negative_aug", &o->tpgcl.negative_aug, map);
}

Status ApplyTpGrGadOverrides(TpGrGadOptions* options,
                             const std::vector<std::string>& overrides) {
  OptionMap map;
  BindTpGrGadOptions(options, &map);
  return map.ApplyAll(overrides);
}

Result<TpGrGadOptions> BuildTpGrGadOptions(
    uint64_t seed, const std::vector<std::string>& overrides) {
  TpGrGadOptions options;
  options.seed = seed;
  options.ReseedStages();
  GRGAD_RETURN_IF_ERROR(ApplyTpGrGadOverrides(&options, overrides));
  return options;
}

namespace {

void BindDeepFdOptions(DeepFdOptions* o, OptionMap* map) {
  map->Add("hidden_dim", &o->hidden_dim);
  map->Add("embed_dim", &o->embed_dim);
  map->Add("epochs", &o->epochs);
  map->Add("lr", &o->lr);
  map->Add("pairwise_weight", &o->pairwise_weight);
  map->Add("neg_per_pos", &o->neg_per_pos);
  map->Add("max_pairs", &o->max_pairs);
  map->Add("contamination", &o->contamination);
  map->Add("dbscan_min_pts", &o->dbscan_min_pts);
  map->Add("max_group_size", &o->max_group_size);
  map->Add("seed", &o->seed);
}

void BindDeepAeOptions(DeepAeOptions* o, OptionMap* map) {
  map->Add("struct_proj_dim", &o->struct_proj_dim);
  map->Add("hidden_dim", &o->hidden_dim);
  map->Add("bottleneck_dim", &o->bottleneck_dim);
  map->Add("epochs", &o->epochs);
  map->Add("lr", &o->lr);
  map->Add("seed", &o->seed);
}

void BindComGaOptions(ComGaOptions* o, OptionMap* map) {
  map->Add("modularity_dim", &o->modularity_dim);
  map->Add("hidden_dim", &o->hidden_dim);
  map->Add("embed_dim", &o->embed_dim);
  map->Add("epochs", &o->epochs);
  map->Add("lr", &o->lr);
  map->Add("lambda", &o->lambda);
  map->Add("community_weight", &o->community_weight);
  map->Add("neg_per_pos", &o->neg_per_pos);
  map->Add("max_pairs", &o->max_pairs);
  map->Add("seed", &o->seed);
}

void BindAsGaeOptions(AsGaeOptions* o, OptionMap* map) {
  // Flat "epochs"/"seed" address the underlying GAE, matching the other
  // baselines; gae.* spells the rest out.
  map->Add("epochs", &o->gae.epochs);
  map->Add("seed", &o->gae.seed);
  BindGaeOptions("gae.", &o->gae, map);
  map->Add("z_threshold", &o->z_threshold);
  map->Add("closure_quantile", &o->closure_quantile);
  map->Add("max_group_size", &o->max_group_size);
}

// Each method is one registry entry: `make` owns the option structs, binds
// them into an OptionMap, and either reports the bound keys (keys_out !=
// nullptr; nothing constructed) or applies the overrides and constructs.
// One table drives ListMethods, MakeGroupDetector, and MethodOptionKeys, so
// a new method cannot be half-registered.
using MethodFactory = Result<std::unique_ptr<GroupDetector>> (*)(
    const MethodOptions&, std::vector<std::string>* keys_out);

Result<std::unique_ptr<GroupDetector>> MakeTpGrGadMethod(
    const MethodOptions& config, std::vector<std::string>* keys_out) {
  if (keys_out != nullptr) {
    TpGrGadOptions options;
    OptionMap map;
    BindTpGrGadOptions(&options, &map);
    *keys_out = map.Keys();
    return std::unique_ptr<GroupDetector>(nullptr);
  }
  auto options = BuildTpGrGadOptions(config.seed, config.overrides);
  if (!options.ok()) return options.status();
  return std::unique_ptr<GroupDetector>(
      std::make_unique<TpGrGad>(options.value()));
}

Result<std::unique_ptr<GroupDetector>> MakeDominantMethod(
    const MethodOptions& config, std::vector<std::string>* keys_out) {
  GaeOptions gae;
  gae.seed = config.seed;
  GroupExtractionOptions extraction;
  OptionMap map;
  BindGaeOptions("", &gae, &map);
  BindExtractionOptions(&extraction, &map);
  if (keys_out != nullptr) {
    *keys_out = map.Keys();
    return std::unique_ptr<GroupDetector>(nullptr);
  }
  GRGAD_RETURN_IF_ERROR(map.ApplyAll(config.overrides));
  return std::unique_ptr<GroupDetector>(
      std::make_unique<NodeScorerGroupAdapter>(std::make_shared<Dominant>(gae),
                                               extraction));
}

Result<std::unique_ptr<GroupDetector>> MakeDeepAeMethod(
    const MethodOptions& config, std::vector<std::string>* keys_out) {
  DeepAeOptions deep_ae;
  deep_ae.seed = config.seed ^ kDeepAeSeedXor;
  GroupExtractionOptions extraction;
  OptionMap map;
  BindDeepAeOptions(&deep_ae, &map);
  BindExtractionOptions(&extraction, &map);
  if (keys_out != nullptr) {
    *keys_out = map.Keys();
    return std::unique_ptr<GroupDetector>(nullptr);
  }
  GRGAD_RETURN_IF_ERROR(map.ApplyAll(config.overrides));
  return std::unique_ptr<GroupDetector>(
      std::make_unique<NodeScorerGroupAdapter>(std::make_shared<DeepAe>(deep_ae),
                                               extraction));
}

Result<std::unique_ptr<GroupDetector>> MakeComGaMethod(
    const MethodOptions& config, std::vector<std::string>* keys_out) {
  ComGaOptions comga;
  comga.seed = config.seed ^ kComGaSeedXor;
  GroupExtractionOptions extraction;
  OptionMap map;
  BindComGaOptions(&comga, &map);
  BindExtractionOptions(&extraction, &map);
  if (keys_out != nullptr) {
    *keys_out = map.Keys();
    return std::unique_ptr<GroupDetector>(nullptr);
  }
  GRGAD_RETURN_IF_ERROR(map.ApplyAll(config.overrides));
  return std::unique_ptr<GroupDetector>(
      std::make_unique<NodeScorerGroupAdapter>(std::make_shared<ComGa>(comga),
                                               extraction));
}

Result<std::unique_ptr<GroupDetector>> MakeDeepFdMethod(
    const MethodOptions& config, std::vector<std::string>* keys_out) {
  DeepFdOptions deepfd;
  deepfd.seed = config.seed ^ kDeepFdSeedXor;
  OptionMap map;
  BindDeepFdOptions(&deepfd, &map);
  if (keys_out != nullptr) {
    *keys_out = map.Keys();
    return std::unique_ptr<GroupDetector>(nullptr);
  }
  GRGAD_RETURN_IF_ERROR(map.ApplyAll(config.overrides));
  return std::unique_ptr<GroupDetector>(std::make_unique<DeepFd>(deepfd));
}

Result<std::unique_ptr<GroupDetector>> MakeAsGaeMethod(
    const MethodOptions& config, std::vector<std::string>* keys_out) {
  AsGaeOptions as_gae;
  as_gae.gae.seed = config.seed ^ kAsGaeSeedXor;
  OptionMap map;
  BindAsGaeOptions(&as_gae, &map);
  if (keys_out != nullptr) {
    *keys_out = map.Keys();
    return std::unique_ptr<GroupDetector>(nullptr);
  }
  GRGAD_RETURN_IF_ERROR(map.ApplyAll(config.overrides));
  return std::unique_ptr<GroupDetector>(std::make_unique<AsGae>(as_gae));
}

struct MethodEntry {
  const char* name;
  MethodFactory make;
};

constexpr MethodEntry kMethods[] = {
    {"dominant+cc", MakeDominantMethod}, {"deepae+cc", MakeDeepAeMethod},
    {"comga+cc", MakeComGaMethod},       {"deepfd", MakeDeepFdMethod},
    {"as-gae", MakeAsGaeMethod},         {"tp-grgad", MakeTpGrGadMethod},
};

const MethodEntry* FindMethod(const std::string& name) {
  for (const MethodEntry& entry : kMethods) {
    if (name == entry.name) return &entry;
  }
  return nullptr;
}

}  // namespace

std::vector<std::string> ListMethods() {
  std::vector<std::string> names;
  for (const MethodEntry& entry : kMethods) names.push_back(entry.name);
  return names;
}

Result<std::unique_ptr<GroupDetector>> MakeGroupDetector(
    const std::string& name, const MethodOptions& config) {
  const MethodEntry* entry = FindMethod(name);
  if (entry == nullptr) return Status::NotFound("unknown method: " + name);
  return entry->make(config, /*keys_out=*/nullptr);
}

Result<std::vector<std::string>> MethodOptionKeys(const std::string& name) {
  const MethodEntry* entry = FindMethod(name);
  if (entry == nullptr) return Status::NotFound("unknown method: " + name);
  std::vector<std::string> keys;
  auto probe = entry->make(MethodOptions(), &keys);
  if (!probe.ok()) return probe.status();
  return keys;
}

}  // namespace grgad
