// TP-GrGAD: the paper's end-to-end framework (Fig. 2).
//
//   graph --MH-GAE--> anchor nodes --Alg.1--> candidate groups
//         --TPGCL (PPA/PBA + MINE)--> 64-d group embeddings
//         --outlier detector (ECOD)--> anomaly scores per group.
//
// TpGrGad implements the GroupDetector interface as a thin driver over the
// Engine stages in stages.h. Run() keeps the historical contract (aborts on
// programmer error, returns partial artifacts when there is nothing to
// contrast); TryRun() is the fallible entry point — bad input or mid-run
// cancellation comes back as a Status — and additionally threads a
// RunContext through every stage for cancellation, progress callbacks, and
// per-stage telemetry. Callers who need to start mid-pipeline (e.g. rescore
// saved embeddings with a different detector) use stages.h directly.
#ifndef GRGAD_CORE_PIPELINE_H_
#define GRGAD_CORE_PIPELINE_H_

#include "src/core/group_detector.h"
#include "src/core/stages.h"

namespace grgad {

/// The TP-GrGAD method.
class TpGrGad : public GroupDetector {
 public:
  /// Builds the method. When `options.seed` was changed from its default
  /// but the per-stage seeds were not, the constructor propagates the seed
  /// into the training stages — mh_gae and tpgcl, exactly what
  /// ReseedStages() covers; sampler.seed stays independent — so forgetting
  /// ReseedStages() is no longer a footgun. Stage seeds the caller set
  /// explicitly are never overwritten.
  explicit TpGrGad(TpGrGadOptions options = {});

  /// Full pipeline with intermediate artifacts. Aborts on programmer error
  /// (e.g. attribute-less graph); callers needing recoverable errors use
  /// TryRun().
  PipelineArtifacts Run(const Graph& g) const;

  /// Fallible full pipeline: empty/attribute-less graphs, no anchors, or
  /// fewer than two candidate groups return a Status instead of aborting,
  /// and `ctx` (optional) provides cancellation + progress + telemetry.
  Result<PipelineArtifacts> TryRun(const Graph& g,
                                   RunContext* ctx = nullptr) const;

  // GroupDetector interface.
  std::vector<ScoredGroup> DetectGroups(const Graph& g) const override;
  std::string Name() const override { return "tp-grgad"; }

  const TpGrGadOptions& options() const { return options_; }

 private:
  TpGrGadOptions options_;
};

}  // namespace grgad

#endif  // GRGAD_CORE_PIPELINE_H_
