// TP-GrGAD: the paper's end-to-end framework (Fig. 2).
//
//   graph --MH-GAE--> anchor nodes --Alg.1--> candidate groups
//         --TPGCL (PPA/PBA + MINE)--> 64-d group embeddings
//         --outlier detector (ECOD)--> anomaly scores per group.
//
// TpGrGad implements the GroupDetector interface; Run() additionally exposes
// every intermediate artifact for the ablation benches (Tables IV/V, Figs
// 6/7).
#ifndef GRGAD_CORE_PIPELINE_H_
#define GRGAD_CORE_PIPELINE_H_

#include <memory>

#include "src/core/group_detector.h"
#include "src/gae/mh_gae.h"
#include "src/gcl/tpgcl.h"
#include "src/od/detector.h"
#include "src/sampling/group_sampler.h"

namespace grgad {

/// Full-pipeline configuration (defaults mirror §VII-A4).
struct TpGrGadOptions {
  MhGaeOptions mh_gae;
  GroupSamplerOptions sampler;
  TpgclOptions tpgcl;
  DetectorKind detector = DetectorKind::kEcod;
  /// When true, Run() skips TPGCL and scores mean-pooled raw features
  /// instead (the "TP-GrGAD w/o TPGCL" ablation of Table V).
  bool disable_tpgcl = false;
  uint64_t seed = 42;

  /// Propagates `seed` into every stage's seed field.
  void ReseedStages();
};

/// Everything the pipeline produces, stage by stage.
struct PipelineArtifacts {
  std::vector<int> anchors;
  std::vector<std::vector<int>> candidate_groups;
  Matrix group_embeddings;          ///< m x embed (or m x attr_dim w/o TPGCL).
  std::vector<double> group_scores; ///< Detector output, aligned to groups.
  std::vector<ScoredGroup> scored_groups;
  std::vector<double> gae_node_errors;
  std::vector<double> tpgcl_loss_history;
};

/// The TP-GrGAD method.
class TpGrGad : public GroupDetector {
 public:
  explicit TpGrGad(TpGrGadOptions options = {});

  /// Full pipeline with intermediate artifacts.
  PipelineArtifacts Run(const Graph& g) const;

  // GroupDetector interface.
  std::vector<ScoredGroup> DetectGroups(const Graph& g) const override;
  std::string Name() const override { return "tp-grgad"; }

  const TpGrGadOptions& options() const { return options_; }

 private:
  TpGrGadOptions options_;
};

}  // namespace grgad

#endif  // GRGAD_CORE_PIPELINE_H_
