// Incremental artifact refresh: the O(dirty region) serving path.
//
// A resident daemon's artifacts go stale the moment its graph mutates; the
// pre-dynamic answer was a full retrain+rescore per mutation. RefreshArtifacts
// instead re-runs the candidate fan-out for ONLY the dirty anchors
// (AnchorDirtyTracker's ball invalidation), reuses every clean anchor's
// cached pre-dedup candidate list, and replays the deterministic
// ascending-anchor merge + pooled embedding + scoring over the result.
//
// The golden contract (tests/refresh_test.cc): the merged artifacts are
// bitwise identical — groups, embeddings, scores — to running the candidate
// stage + pooled embedding + scoring from scratch on the mutated graph with
// the same anchors, at any GRGAD_THREADS. That holds because
// ResampleAnchors(dirty) + cached lists reproduces exactly what
// ResampleAnchors(all) would produce (per-anchor outputs are independent),
// and FinalizeCandidates is a pure function of the per-anchor lists.
//
// Embeddings are always the pooled mean-attribute kind (the disable_tpgcl
// ablation path): TPGCL training contrasts globally across all groups, so
// it cannot be made O(dirty) — forcing the pooled path is what turns a
// mutation from a retrain into a ball-sized resample. Scoring still runs
// the configured detector, seeded exactly as a full pipeline run would be.
#ifndef GRGAD_CORE_REFRESH_H_
#define GRGAD_CORE_REFRESH_H_

#include <vector>

#include "src/core/artifacts.h"
#include "src/core/run_context.h"
#include "src/core/stages.h"
#include "src/graph/graph.h"
#include "src/util/status.h"

namespace grgad {

/// The refresh path's resident cache: one pre-dedup candidate list per
/// anchor, exactly what GroupSampler::ResampleAnchors fills. Unprimed state
/// forces the first refresh to resample every anchor.
struct RefreshState {
  bool primed = false;
  std::vector<std::vector<std::vector<int>>> per_anchor;
};

/// What one refresh did (for ServeMetrics and logs).
struct RefreshStats {
  size_t dirty_anchors = 0;   ///< Anchors re-sampled this refresh.
  size_t reused_anchors = 0;  ///< Anchors served from the cache.
  size_t num_groups = 0;      ///< Candidate groups after the merge.
  bool full = false;          ///< True when unprimed forced a full resample.
};

/// Re-samples `dirty_indices` (indices into artifacts->anchors), merges with
/// the cached lists in `state`, and replaces the candidate/embedding/score
/// artifacts in place (anchors, GAE node errors, and provenance fields are
/// preserved). On any non-OK return the state is marked unprimed so the next
/// refresh falls back to a full resample instead of trusting a torn cache.
Status RefreshArtifacts(const Graph& g, const TpGrGadOptions& options,
                        const std::vector<int>& dirty_indices,
                        RefreshState* state, PipelineArtifacts* artifacts,
                        RunContext* ctx = nullptr,
                        RefreshStats* stats = nullptr);

}  // namespace grgad

#endif  // GRGAD_CORE_REFRESH_H_
