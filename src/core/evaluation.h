// Group-level evaluation harness (paper §VII-A2): CR, group-wise F1 and
// ROC-AUC, and the detected-group size statistic of Fig. 5.
//
// Protocol: every predicted group is labeled anomalous when its best Jaccard
// overlap with a ground-truth group reaches `match_jaccard`; F1 thresholds
// scores at the true contamination rate of the prediction set (the standard
// unsupervised-AD convention); CR (Eqn. 25) is computed over the groups
// predicted anomalous at that threshold.
#ifndef GRGAD_CORE_EVALUATION_H_
#define GRGAD_CORE_EVALUATION_H_

#include <string>

#include "src/core/types.h"
#include "src/data/dataset.h"

namespace grgad {

/// One method-on-dataset evaluation row (Table III cells).
struct GroupEvaluation {
  double cr = 0.0;
  double f1 = 0.0;
  double auc = 0.5;
  double avg_predicted_size = 0.0;  ///< Fig. 5 series.
  int num_candidates = 0;
  int num_predicted_anomalous = 0;
};

/// Evaluation knobs.
struct EvaluationOptions {
  /// Minimum Jaccard overlap for a predicted group to count as matching a
  /// ground-truth group.
  double match_jaccard = 0.5;
  /// Definition 1's threshold τ, chosen label-free per run: a group is
  /// predicted anomalous when score > mean + z_threshold * std of the run's
  /// scores. CR and the size statistic are computed over that set.
  double z_threshold = 0.5;
};

/// Scores a method's output against a dataset's ground truth.
GroupEvaluation EvaluateGroups(const Dataset& dataset,
                               const std::vector<ScoredGroup>& predictions,
                               const EvaluationOptions& options = {});

/// Aggregates evaluations over seeds: mean ± standard error per metric.
struct AggregatedEvaluation {
  double cr_mean = 0, cr_stderr = 0;
  double f1_mean = 0, f1_stderr = 0;
  double auc_mean = 0, auc_stderr = 0;
  double size_mean = 0;
};
AggregatedEvaluation Aggregate(const std::vector<GroupEvaluation>& runs);

/// "0.81±0.10"-style cell used by the bench tables.
std::string FormatCell(double mean, double stderr_value);

}  // namespace grgad

#endif  // GRGAD_CORE_EVALUATION_H_
