#include "src/core/run_context.h"

#include <utility>

namespace grgad {

void RunContext::RecordSubStage(std::string stage, double seconds) {
  timings_.push_back({stage, seconds});
  if (on_progress) {
    on_progress({std::move(stage), /*finished=*/true, seconds});
  }
}

StageScope::StageScope(RunContext* ctx, std::string stage)
    : ctx_(ctx), stage_(std::move(stage)) {
  if (ctx_ != nullptr && ctx_->on_progress) {
    ctx_->on_progress({stage_, /*finished=*/false, 0.0});
  }
}

StageScope::~StageScope() {
  if (ctx_ == nullptr) return;
  const double seconds = timer_.ElapsedSeconds();
  ctx_->timings_.push_back({stage_, seconds});
  if (ctx_->on_progress) {
    ctx_->on_progress({stage_, /*finished=*/true, seconds});
  }
}

}  // namespace grgad
