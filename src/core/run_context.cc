#include "src/core/run_context.h"

#include <utility>

namespace grgad {

void RunContext::AppendTiming(const std::string& stage, double seconds) {
  std::lock_guard<std::mutex> lock(timings_mu_);
  timings_.push_back({stage, seconds});
}

std::vector<StageTiming> RunContext::stage_timings() const {
  std::lock_guard<std::mutex> lock(timings_mu_);
  return timings_;
}

double RunContext::TotalSeconds() const {
  std::lock_guard<std::mutex> lock(timings_mu_);
  double total = 0.0;
  for (const StageTiming& t : timings_) total += t.seconds;
  return total;
}

void RunContext::RecordSubStage(std::string stage, double seconds) {
  AppendTiming(stage, seconds);
  // The observer fires outside the lock: it may itself read stage_timings().
  if (on_progress) {
    on_progress({std::move(stage), /*finished=*/true, seconds});
  }
}

StageScope::StageScope(RunContext* ctx, std::string stage)
    : ctx_(ctx), stage_(std::move(stage)) {
  if (ctx_ != nullptr && ctx_->on_progress) {
    ctx_->on_progress({stage_, /*finished=*/false, 0.0});
  }
}

StageScope::~StageScope() {
  if (ctx_ == nullptr) return;
  const double seconds = timer_.ElapsedSeconds();
  ctx_->AppendTiming(stage_, seconds);
  if (ctx_->on_progress) {
    ctx_->on_progress({stage_, /*finished=*/true, seconds});
  }
}

}  // namespace grgad
