// Name-based Gr-GAD method factory, mirroring data/registry.h.
//
// Benches, tests, and the grgad CLI construct any of the paper's six
// methods by string — "tp-grgad" and the five baselines — configured
// entirely through "key=value" override strings (see options.h), so adding
// a method or a knob never means re-wiring call sites. A single MethodOptions
// seed decorrelates every method's RNG streams the same way the bench
// harness always has (per-method XOR constants), keeping registry-built
// methods bit-identical to the historical hand-wired ones.
#ifndef GRGAD_CORE_METHOD_REGISTRY_H_
#define GRGAD_CORE_METHOD_REGISTRY_H_

#include <memory>
#include <string>
#include <vector>

#include "src/core/group_detector.h"
#include "src/core/options.h"
#include "src/core/stages.h"

namespace grgad {

/// Method names accepted by MakeGroupDetector, in the bench-table order:
/// "dominant+cc", "deepae+cc", "comga+cc" (node scorers + connected-
/// component extraction), "deepfd", "as-gae", "tp-grgad".
std::vector<std::string> ListMethods();

/// Registry-level configuration: one seed (decorrelated per method) plus
/// free-form "key=value" overrides applied to that method's options.
struct MethodOptions {
  uint64_t seed = 42;
  std::vector<std::string> overrides;
};

/// Builds the named method. NotFound for unknown names; InvalidArgument for
/// unknown override keys or malformed values.
Result<std::unique_ptr<GroupDetector>> MakeGroupDetector(
    const std::string& name, const MethodOptions& options = {});

/// The override keys the named method accepts, sorted; NotFound for unknown
/// method names.
Result<std::vector<std::string>> MethodOptionKeys(const std::string& name);

/// Binds every TpGrGadOptions field (dotted keys: "tpgcl.epochs",
/// "sampler.max_groups", "detector", ...) into `map`. Exposed so callers
/// holding a TpGrGadOptions can apply override strings directly.
void BindTpGrGadOptions(TpGrGadOptions* options, OptionMap* map);

/// One-shot convenience over BindTpGrGadOptions: applies "key=value"
/// overrides to `options`.
Status ApplyTpGrGadOverrides(TpGrGadOptions* options,
                             const std::vector<std::string>& overrides);

/// The canonical (seed, overrides) -> TpGrGadOptions construction shared by
/// the registry, the benches, and the CLI: seeds every stage from `seed`,
/// then applies the overrides in order (so explicit stage-seed overrides
/// win).
Result<TpGrGadOptions> BuildTpGrGadOptions(
    uint64_t seed, const std::vector<std::string>& overrides);

}  // namespace grgad

#endif  // GRGAD_CORE_METHOD_REGISTRY_H_
