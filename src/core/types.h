// Vocabulary types shared across the pipeline: topology patterns and scored
// groups (the Gr-GAD output type of Definition 1).
#ifndef GRGAD_CORE_TYPES_H_
#define GRGAD_CORE_TYPES_H_

#include <string>
#include <vector>

namespace grgad {

/// The three fundamental topology patterns of the paper (§V-C1): paths,
/// trees, and cycles; composite patterns reduce to these. kMixed labels
/// groups that expose no single dominant pattern.
enum class TopologyPattern { kPath = 0, kTree = 1, kCycle = 2, kMixed = 3 };

/// "path" | "tree" | "cycle" | "mixed".
inline const char* ToString(TopologyPattern p) {
  switch (p) {
    case TopologyPattern::kPath: return "path";
    case TopologyPattern::kTree: return "tree";
    case TopologyPattern::kCycle: return "cycle";
    case TopologyPattern::kMixed: return "mixed";
  }
  return "?";
}

/// A detected group: node ids (sorted, in the host graph) + anomaly score.
/// This is the (c_i, s_i) pair of the paper's Definition 1.
struct ScoredGroup {
  std::vector<int> nodes;
  double score = 0.0;
};

}  // namespace grgad

#endif  // GRGAD_CORE_TYPES_H_
