// The Engine layer: TP-GrGAD's pipeline decomposed into first-class stages.
//
// The paper's framework (Fig. 2) is explicitly staged:
//
//   graph --[anchors]--> anchor nodes --[sampling]--> candidate groups
//         --[embedding]--> group embeddings --[scoring]--> scored groups
//
// Each stage here is a standalone fallible function with typed inputs and
// outputs, so callers can run the whole pipeline (RunPipeline), drive the
// stages themselves, or start from any persisted intermediate artifact —
// e.g. RescoreArtifacts re-runs only the scoring stage over saved TPGCL
// embeddings to swap the outlier detector without re-training. Every stage
// takes an optional RunContext for cancellation, progress callbacks, and
// per-stage wall-time telemetry; bad inputs return a Status instead of
// aborting.
#ifndef GRGAD_CORE_STAGES_H_
#define GRGAD_CORE_STAGES_H_

#include <vector>

#include "src/core/artifacts.h"
#include "src/core/run_context.h"
#include "src/gae/mh_gae.h"
#include "src/gcl/tpgcl.h"
#include "src/od/detector.h"
#include "src/od/ensemble.h"
#include "src/sampling/group_sampler.h"
#include "src/util/status.h"

namespace grgad {

/// Full-pipeline configuration (defaults mirror §VII-A4).
struct TpGrGadOptions {
  MhGaeOptions mh_gae;
  GroupSamplerOptions sampler;
  TpgclOptions tpgcl;
  DetectorKind detector = DetectorKind::kEcod;
  /// When true, the embedding stage skips TPGCL and scores mean-pooled raw
  /// features instead (the "TP-GrGAD w/o TPGCL" ablation of Table V).
  bool disable_tpgcl = false;
  uint64_t seed = 42;
  /// Serving: traversal workspaces to pre-grow per pool before the first
  /// request (PrewarmPipelineState; OptionMap key
  /// "serve.prewarm_workspaces"). 0 = no prewarm; values below the
  /// parallelism degree are raised to it, since the candidate stage leases
  /// one workspace pair per worker anyway. Prewarming never changes
  /// results — it only moves workspace growth out of the serving path.
  int serve_prewarm_workspaces = 0;
  /// Serving durability: fsync the write-ahead log every N appended records
  /// (OptionMap key "serve.wal_sync_every"). 1 = every record is durable
  /// before its ack (the safest and default); larger values batch fsyncs
  /// and bound data loss to the last N-1 acked mutations on power loss —
  /// kill -9 of the daemon alone never loses acked records either way,
  /// since the kernel holds the written bytes.
  int serve_wal_sync_every = 1;
  /// Serving durability: write a full state snapshot (graph + artifacts +
  /// WAL high-water mark) every N applied mutations and truncate the
  /// replayed WAL prefix (OptionMap key "serve.snapshot_every_mutations").
  /// 0 = never snapshot automatically; the WAL alone still recovers the
  /// session (replay from the start-of-session state).
  int serve_snapshot_every_mutations = 0;

  /// Propagates `seed` into the training-stage seeds (mh_gae.base.seed,
  /// tpgcl.seed). The sampler and its subsampling draw keep their own
  /// sampler.seed field, as they always have. TpGrGad's constructor does
  /// this automatically when `seed` was changed and the stage seeds were
  /// not; keep calling this only to re-seed explicitly.
  void ReseedStages();
};

/// Stage 1 output: anchor localization (MH-GAE).
struct AnchorStageOutput {
  std::vector<int> anchors;           ///< Sorted node ids.
  std::vector<double> node_errors;    ///< Per-node reconstruction errors.
};

/// Stage 2 output: candidate group sampling (Alg. 1).
struct CandidateStageOutput {
  std::vector<std::vector<int>> groups;
};

/// Stage 3 output: group embeddings (TPGCL, or mean pooling w/o TPGCL).
struct EmbeddingStageOutput {
  Matrix embeddings;                  ///< m x embed (or m x attr_dim).
  std::vector<double> loss_history;   ///< Empty for the pooled ablation.
};

/// Stage 4 output: outlier scoring over group embeddings.
struct ScoringStageOutput {
  std::vector<double> scores;         ///< Aligned to the input groups.
  std::vector<ScoredGroup> scored_groups;
  /// Per-member outcomes when options.detector is the ensemble (empty
  /// otherwise). A failed member is dropped and the scores average over the
  /// survivors; all members failing is a stage error, not a zero score.
  std::vector<EnsembleMemberStatus> member_statuses;
};

/// Trains MH-GAE on `g` and selects anchor nodes. InvalidArgument when the
/// graph has fewer than two nodes or no attributes.
Result<AnchorStageOutput> RunAnchorStage(const Graph& g,
                                         const TpGrGadOptions& options,
                                         RunContext* ctx = nullptr);

/// Samples candidate groups from `anchors` (Alg. 1). An empty anchor set
/// yields an empty (but OK) candidate set. With ctx->profile set, the
/// sampler's phases are reported as "candidates/search" /
/// "candidates/components" / "candidates/select" sub-stage timings
/// alongside the top-level "sampling" entry.
Result<CandidateStageOutput> RunCandidateStage(
    const Graph& g, const std::vector<int>& anchors,
    const TpGrGadOptions& options, RunContext* ctx = nullptr);

/// Embeds the candidate groups with TPGCL (or mean pooling when
/// options.disable_tpgcl). FailedPrecondition with fewer than two groups —
/// there is nothing to contrast.
Result<EmbeddingStageOutput> RunEmbeddingStage(
    const Graph& g, const std::vector<std::vector<int>>& groups,
    const TpGrGadOptions& options, RunContext* ctx = nullptr);

/// Scores one embedding row per group with options.detector (seeded with
/// options.seed ^ 0x3, matching the full pipeline). Only needs embeddings —
/// this is the stage artifact reloads re-run to swap detectors. Neighbor-
/// based detectors score through one shared NeighborIndex built here; with
/// ctx->profile set, the index build and the detector proper are reported
/// as "scoring/neighbors" / "scoring/detect" sub-stage timings.
Result<ScoringStageOutput> RunScoringStage(
    const Matrix& embeddings, const std::vector<std::vector<int>>& groups,
    const TpGrGadOptions& options, RunContext* ctx = nullptr);

/// Thin driver over the four stages. Fills `out` with every artifact
/// produced before the first failure, so callers keep partial progress on
/// non-OK returns (e.g. the sampled-but-unscorable candidate list when
/// fewer than two candidates exist).
Status RunPipelineInto(const Graph& g, const TpGrGadOptions& options,
                       RunContext* ctx, PipelineArtifacts* out);

/// RunPipelineInto without the partial-progress escape hatch: status or the
/// complete artifact set.
Result<PipelineArtifacts> RunPipeline(const Graph& g,
                                      const TpGrGadOptions& options,
                                      RunContext* ctx = nullptr);

/// Pre-grows the candidate stage's shared traversal-workspace pools (the
/// BFS pool and the sampler's weighted pool) for `g`-sized traversals, so
/// a resident process reaches steady-state zero-workspace-alloc before its
/// first request (TraversalWorkspace::TotalHeapAllocs stops growing). No-op
/// when options.serve_prewarm_workspaces == 0. Call with no leases
/// outstanding — i.e. before serving, not mid-run.
void PrewarmPipelineState(const Graph& g, const TpGrGadOptions& options);

/// Re-runs only the scoring stage over saved artifacts with a (possibly
/// different) detector — the "ECOD -> ensemble without re-training TPGCL"
/// path. `seed` should be the original pipeline seed for bit-identical
/// parity with a full run. FailedPrecondition when the artifacts carry no
/// embeddings.
Result<ScoringStageOutput> RescoreArtifacts(const PipelineArtifacts& artifacts,
                                            DetectorKind detector,
                                            uint64_t seed,
                                            RunContext* ctx = nullptr);

}  // namespace grgad

#endif  // GRGAD_CORE_STAGES_H_
