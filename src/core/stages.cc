#include "src/core/stages.h"

#include <utility>

#include "src/od/neighbor_index.h"
#include "src/util/fault.h"
#include "src/util/logging.h"

namespace grgad {
namespace {

/// True when the run's stop token has fired (cancel, deadline, or budget).
bool Stopped(const RunContext* ctx) {
  return ctx != nullptr && ctx->cancelled();
}

/// Status for a run stopped during `stage`, typed by why it stopped:
/// SIGINT/SIGTERM -> kCancelled, --timeout -> kDeadlineExceeded, arena
/// budget -> kResourceExhausted.
Status StopStatusIn(const RunContext* ctx, const char* stage) {
  const StopReason reason =
      ctx != nullptr ? ctx->stop_reason() : StopReason::kCancelled;
  switch (reason) {
    case StopReason::kDeadlineExceeded:
      return Status::DeadlineExceeded(
          std::string("deadline exceeded during ") + stage + " stage");
    case StopReason::kResourceExhausted:
      return Status::ResourceExhausted(
          std::string("resource budget exhausted during ") + stage +
          " stage");
    default:
      return Status::Cancelled(std::string("run cancelled during ") + stage +
                               " stage");
  }
}

/// Injected stage-boundary fault (no-op unless GRGAD_FAULTS / --inject).
Status StageFault(const char* point) {
  return FaultInjector::Global().Check(point, StatusCode::kInternal);
}

}  // namespace

void TpGrGadOptions::ReseedStages() {
  mh_gae.base.seed = seed ^ 0x1;
  tpgcl.seed = seed ^ 0x2;
}

Result<AnchorStageOutput> RunAnchorStage(const Graph& g,
                                         const TpGrGadOptions& options,
                                         RunContext* ctx) {
  if (!g.has_attributes()) {
    return Status::InvalidArgument("anchor stage: graph has no attributes");
  }
  if (g.num_nodes() < 2) {
    return Status::InvalidArgument("anchor stage: graph needs >= 2 nodes");
  }
  if (g.num_edges() == 0) {
    // GAE training needs structure pairs to reconstruct.
    return Status::InvalidArgument("anchor stage: graph has no edges");
  }
  if (Stopped(ctx)) return StopStatusIn(ctx, "anchor");
  if (Status fault = StageFault("stage/anchors"); !fault.ok()) return fault;
  StageScope scope(ctx, "anchors");
  MhGaeOptions mh_options = options.mh_gae;
  if (ctx != nullptr) mh_options.base.cancel = ctx->cancel_token();
  MhGae mh_gae(mh_options);
  MhGaeResult gae = mh_gae.FitAnchors(g);
  if (Stopped(ctx)) return StopStatusIn(ctx, "anchor");
  AnchorStageOutput out;
  out.anchors = std::move(gae.anchors);
  out.node_errors = std::move(gae.gae.node_errors);
  GRGAD_LOG(kDebug) << "pipeline: " << out.anchors.size()
                    << " anchors selected";
  return out;
}

Result<CandidateStageOutput> RunCandidateStage(const Graph& g,
                                               const std::vector<int>& anchors,
                                               const TpGrGadOptions& options,
                                               RunContext* ctx) {
  if (Stopped(ctx)) return StopStatusIn(ctx, "sampling");
  if (Status fault = StageFault("stage/sampling"); !fault.ok()) return fault;
  StageScope scope(ctx, "sampling");
  GroupSamplerOptions sampler_options = options.sampler;
  if (ctx != nullptr) sampler_options.cancel = ctx->cancel_token();
  GroupSampler sampler(sampler_options);
  CandidateStageOutput out;
  // With profile telemetry on, the sampler clocks its three phases and they
  // land alongside the top-level "sampling" timing (scoring-style
  // sub-stages: candidates/search, candidates/components,
  // candidates/select).
  const bool profile = ctx != nullptr && ctx->profile;
  SampleTelemetry telemetry;
  out.groups = sampler.Sample(g, anchors, profile ? &telemetry : nullptr);
  if (profile) {
    ctx->RecordSubStage("candidates/search", telemetry.search_seconds);
    ctx->RecordSubStage("candidates/components", telemetry.components_seconds);
    ctx->RecordSubStage("candidates/select", telemetry.select_seconds);
  }
  if (Stopped(ctx)) return StopStatusIn(ctx, "sampling");
  GRGAD_LOG(kDebug) << "pipeline: " << out.groups.size()
                    << " candidate groups";
  return out;
}

Result<EmbeddingStageOutput> RunEmbeddingStage(
    const Graph& g, const std::vector<std::vector<int>>& groups,
    const TpGrGadOptions& options, RunContext* ctx) {
  if (groups.size() < 2) {
    return Status::FailedPrecondition(
        "embedding stage: need >= 2 candidate groups to contrast, got " +
        std::to_string(groups.size()));
  }
  if (!g.has_attributes()) {
    return Status::InvalidArgument("embedding stage: graph has no attributes");
  }
  if (Stopped(ctx)) return StopStatusIn(ctx, "embedding");
  if (Status fault = StageFault("stage/embedding"); !fault.ok()) return fault;
  StageScope scope(ctx, "embedding");
  EmbeddingStageOutput out;
  if (options.disable_tpgcl) {
    // Table V ablation: mean-pooled raw attributes per group.
    const int m = static_cast<int>(groups.size());
    Matrix pooled(m, g.attr_dim());
    for (int i = 0; i < m; ++i) {
      const auto& group = groups[i];
      for (int v : group) {
        const double* row = g.attributes().RowPtr(v);
        for (size_t j = 0; j < g.attr_dim(); ++j) pooled(i, j) += row[j];
      }
      for (size_t j = 0; j < g.attr_dim(); ++j) {
        pooled(i, j) /= static_cast<double>(group.size());
      }
    }
    out.embeddings = std::move(pooled);
  } else {
    TpgclOptions tpgcl_options = options.tpgcl;
    if (ctx != nullptr) tpgcl_options.cancel = ctx->cancel_token();
    Tpgcl tpgcl(tpgcl_options);
    TpgclResult result = tpgcl.FitEmbed(g, groups);
    if (Stopped(ctx)) return StopStatusIn(ctx, "embedding");
    out.embeddings = std::move(result.embeddings);
    out.loss_history = std::move(result.loss_history);
  }
  return out;
}

Result<ScoringStageOutput> RunScoringStage(
    const Matrix& embeddings, const std::vector<std::vector<int>>& groups,
    const TpGrGadOptions& options, RunContext* ctx) {
  if (embeddings.rows() != groups.size()) {
    return Status::InvalidArgument(
        "scoring stage: " + std::to_string(embeddings.rows()) +
        " embedding rows vs " + std::to_string(groups.size()) + " groups");
  }
  if (embeddings.rows() == 0) {
    return Status::FailedPrecondition("scoring stage: nothing to score");
  }
  if (Stopped(ctx)) return StopStatusIn(ctx, "scoring");
  if (Status fault = StageFault("stage/scoring"); !fault.ok()) return fault;
  StageScope scope(ctx, "scoring");
  auto detector = MakeOutlierDetector(options.detector, options.seed ^ 0x3);
  if (detector == nullptr) {
    return Status::Internal("scoring stage: unknown detector kind");
  }
  if (ctx != nullptr) detector->SetStopToken(ctx->cancel_token());
  ScoringStageOutput out;
  // Neighbor-based detectors (kNN / LOF / the ensemble) all consume the
  // same k-NN structure; build it once here and share it. Sub-stage scopes
  // only appear when the caller opted into profile telemetry.
  RunContext* profile_ctx =
      (ctx != nullptr && ctx->profile) ? ctx : nullptr;
  const int k = detector->NeighborsNeeded(static_cast<int>(embeddings.rows()));
  if (k > 0) {
    NeighborIndex index;
    {
      StageScope neighbors_scope(profile_ctx, "scoring/neighbors");
      index = BuildNeighborIndex(embeddings, k);
    }
    StageScope detect_scope(profile_ctx, "scoring/detect");
    out.scores = detector->FitScoreWithIndex(embeddings, index);
  } else {
    StageScope detect_scope(profile_ctx, "scoring/detect");
    out.scores = detector->FitScore(embeddings);
  }
  if (Stopped(ctx)) return StopStatusIn(ctx, "scoring");
  // Ensemble degradation surface: keep the per-member outcomes, and treat
  // a fully-failed ensemble as a stage error (the all-zero scores it
  // returns carry no ranking signal).
  if (auto* ensemble = dynamic_cast<EnsembleDetector*>(detector.get())) {
    out.member_statuses = ensemble->member_statuses();
    if (ensemble->survivors() == 0) {
      std::string detail;
      for (const auto& ms : out.member_statuses) {
        if (!detail.empty()) detail += "; ";
        detail += ms.name + ": " + ms.status.ToString();
      }
      return Status::Internal(
          "scoring stage: every ensemble member failed (" + detail + ")");
    }
    for (const auto& ms : out.member_statuses) {
      if (!ms.status.ok()) {
        GRGAD_LOG(kWarning) << "scoring: ensemble member " << ms.name
                            << " dropped: " << ms.status.ToString();
      }
    }
  }
  out.scored_groups.reserve(groups.size());
  for (size_t i = 0; i < groups.size(); ++i) {
    out.scored_groups.push_back({groups[i], out.scores[i]});
  }
  return out;
}

Status RunPipelineInto(const Graph& g, const TpGrGadOptions& options,
                       RunContext* ctx, PipelineArtifacts* out) {
  *out = PipelineArtifacts();
  out->seed = options.seed;

  auto anchors = RunAnchorStage(g, options, ctx);
  if (!anchors.ok()) return anchors.status();
  out->anchors = std::move(anchors.value().anchors);
  out->gae_node_errors = std::move(anchors.value().node_errors);
  if (out->anchors.empty()) {
    return Status::FailedPrecondition("pipeline: no anchor nodes selected");
  }

  auto candidates = RunCandidateStage(g, out->anchors, options, ctx);
  if (!candidates.ok()) return candidates.status();
  out->candidate_groups = std::move(candidates.value().groups);
  if (out->candidate_groups.size() < 2) {
    // Not enough candidates to contrast; keep them, unscored, so callers
    // (and the legacy Run()) still see what the sampler produced.
    for (const auto& group : out->candidate_groups) {
      out->scored_groups.push_back({group, 0.0});
    }
    return Status::FailedPrecondition(
        "pipeline: need >= 2 candidate groups to contrast, got " +
        std::to_string(out->candidate_groups.size()));
  }

  auto embedding = RunEmbeddingStage(g, out->candidate_groups, options, ctx);
  if (!embedding.ok()) return embedding.status();
  out->group_embeddings = std::move(embedding.value().embeddings);
  out->tpgcl_loss_history = std::move(embedding.value().loss_history);

  auto scoring =
      RunScoringStage(out->group_embeddings, out->candidate_groups, options,
                      ctx);
  if (!scoring.ok()) return scoring.status();
  out->group_scores = std::move(scoring.value().scores);
  out->scored_groups = std::move(scoring.value().scored_groups);
  return Status::Ok();
}

Result<PipelineArtifacts> RunPipeline(const Graph& g,
                                      const TpGrGadOptions& options,
                                      RunContext* ctx) {
  PipelineArtifacts artifacts;
  const Status status = RunPipelineInto(g, options, ctx, &artifacts);
  if (!status.ok()) return status;
  return artifacts;
}

void PrewarmPipelineState(const Graph& g, const TpGrGadOptions& options) {
  if (options.serve_prewarm_workspaces <= 0) return;
  GroupSampler::PrewarmWorkspaces(g, options.sampler,
                                  options.serve_prewarm_workspaces);
}

Result<ScoringStageOutput> RescoreArtifacts(const PipelineArtifacts& artifacts,
                                            DetectorKind detector,
                                            uint64_t seed, RunContext* ctx) {
  if (artifacts.group_embeddings.rows() == 0) {
    return Status::FailedPrecondition(
        "rescore: artifacts carry no group embeddings (was the run saved "
        "after the embedding stage?)");
  }
  TpGrGadOptions options;
  options.detector = detector;
  options.seed = seed;
  return RunScoringStage(artifacts.group_embeddings,
                         artifacts.candidate_groups, options, ctx);
}

}  // namespace grgad
