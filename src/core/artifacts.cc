#include "src/core/artifacts.h"

#include "src/core/options.h"
#include "src/util/atomic_io.h"
#include "src/util/retry.h"

#include <cerrno>
#include <climits>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <map>
#include <sstream>
#include <utility>

namespace grgad {
namespace {

// v2 adds per-file byte counts + FNV-1a 64 checksums and per-field element
// counts to the manifest, so Load can reject truncation, bit-flips, and
// missing files up front. v1 directories (no checksums) still load.
constexpr int kFormatVersion = 2;
constexpr int kLegacyVersion = 1;
constexpr const char* kManifestFile = "manifest.txt";

std::string JoinInts(const std::vector<int>& v) {
  std::string out;
  for (size_t i = 0; i < v.size(); ++i) {
    if (i) out += ' ';
    out += std::to_string(v[i]);
  }
  return out;
}

std::string SerializeDoubles(const std::vector<double>& v) {
  std::string content;
  for (double x : v) {
    content += FormatExactDouble(x);
    content += '\n';
  }
  return content;
}

Result<std::vector<double>> ParseDoubles(const std::string& content,
                                         const std::string& path) {
  std::istringstream in(content);
  std::vector<double> out;
  std::string token;
  while (in >> token) {
    errno = 0;
    char* end = nullptr;
    const double x = std::strtod(token.c_str(), &end);
    if (end == token.c_str() || *end != '\0') {
      return Status::InvalidArgument("bad double '" + token + "' in " + path);
    }
    out.push_back(x);
  }
  return out;
}

Result<std::vector<int>> ParseInts(const std::string& line,
                                   const std::string& path) {
  std::istringstream in(line);
  std::vector<int> out;
  std::string token;
  while (in >> token) {
    errno = 0;
    char* end = nullptr;
    const long long x = std::strtoll(token.c_str(), &end, 10);
    if (end == token.c_str() || *end != '\0' || errno == ERANGE ||
        x < INT_MIN || x > INT_MAX) {
      return Status::InvalidArgument("bad integer '" + token + "' in " + path);
    }
    out.push_back(static_cast<int>(x));
  }
  return out;
}

// One group per line; a leading count line distinguishes "no groups" from
// "one empty group".
std::string SerializeGroupLines(const std::vector<std::vector<int>>& groups) {
  std::string content = std::to_string(groups.size()) + "\n";
  for (const auto& group : groups) {
    content += JoinInts(group);
    content += '\n';
  }
  return content;
}

Result<std::vector<std::vector<int>>> ParseGroupLines(
    const std::string& content, const std::string& path) {
  std::istringstream in(content);
  std::string line;
  if (!std::getline(in, line)) {
    return Status::InvalidArgument("missing count line in " + path);
  }
  auto count = ParseInts(line, path);
  if (!count.ok()) return count.status();
  if (count.value().size() != 1 || count.value()[0] < 0) {
    return Status::InvalidArgument("bad count line in " + path);
  }
  // No reserve: an absurd count line fails on the missing rows below
  // instead of attempting a giant allocation.
  std::vector<std::vector<int>> groups;
  for (int i = 0; i < count.value()[0]; ++i) {
    if (!std::getline(in, line)) {
      return Status::InvalidArgument("truncated group file " + path);
    }
    auto group = ParseInts(line, path);
    if (!group.ok()) return group.status();
    groups.push_back(std::move(group).value());
  }
  return groups;
}

std::string SerializeMatrix(const Matrix& m) {
  std::string content =
      std::to_string(m.rows()) + " " + std::to_string(m.cols()) + "\n";
  for (size_t i = 0; i < m.rows(); ++i) {
    for (size_t j = 0; j < m.cols(); ++j) {
      if (j) content += ' ';
      content += FormatExactDouble(m(i, j));
    }
    content += '\n';
  }
  return content;
}

Result<Matrix> ParseMatrix(const std::string& content,
                           const std::string& path) {
  std::istringstream in(content);
  long long rows = 0, cols = 0;
  if (!(in >> rows >> cols)) {
    return Status::InvalidArgument("missing dims line in " + path);
  }
  // Guard the allocation: dims come from an untrusted file.
  constexpr long long kMaxElements = 1LL << 28;  // 256M doubles = 2 GiB.
  if (rows < 0 || cols < 0 || (cols > 0 && rows > kMaxElements / cols)) {
    return Status::InvalidArgument("implausible dims " + std::to_string(rows) +
                                   "x" + std::to_string(cols) + " in " + path);
  }
  Matrix m(static_cast<size_t>(rows), static_cast<size_t>(cols));
  for (size_t i = 0; i < m.rows(); ++i) {
    for (size_t j = 0; j < m.cols(); ++j) {
      std::string token;
      if (!(in >> token)) {
        return Status::InvalidArgument("truncated matrix file " + path);
      }
      char* end = nullptr;
      m(i, j) = std::strtod(token.c_str(), &end);
      if (end == token.c_str() || *end != '\0') {
        return Status::InvalidArgument("bad double '" + token + "' in " +
                                       path);
      }
    }
  }
  return m;
}

std::string SerializeScoredGroups(const std::vector<ScoredGroup>& groups) {
  std::string scored;
  scored += std::to_string(groups.size());
  scored += '\n';
  for (const ScoredGroup& sg : groups) {
    scored += FormatExactDouble(sg.score);
    for (int v : sg.nodes) {
      scored += ' ';
      scored += std::to_string(v);
    }
    scored += '\n';
  }
  return scored;
}

Result<std::vector<ScoredGroup>> ParseScoredGroups(const std::string& content,
                                                   const std::string& path) {
  std::istringstream in(content);
  std::string line;
  if (!std::getline(in, line)) {
    return Status::InvalidArgument("missing count line in " + path);
  }
  auto count_line = ParseInts(line, path);
  if (!count_line.ok()) return count_line.status();
  if (count_line.value().size() != 1 || count_line.value()[0] < 0) {
    return Status::InvalidArgument("bad count line in " + path);
  }
  const int count = count_line.value()[0];
  std::vector<ScoredGroup> out;
  for (int i = 0; i < count; ++i) {
    if (!std::getline(in, line)) {
      return Status::InvalidArgument("truncated scored-group file " + path);
    }
    std::istringstream row(line);
    ScoredGroup sg;
    std::string score_token;
    if (!(row >> score_token)) {
      return Status::InvalidArgument("empty scored-group row in " + path);
    }
    char* end = nullptr;
    sg.score = std::strtod(score_token.c_str(), &end);
    if (end == score_token.c_str() || *end != '\0') {
      return Status::InvalidArgument("bad score '" + score_token + "' in " +
                                     path);
    }
    int v;
    while (row >> v) sg.nodes.push_back(v);
    out.push_back(std::move(sg));
  }
  return out;
}

std::string PathIn(const std::string& dir, const char* file) {
  return (std::filesystem::path(dir) / file).string();
}

/// The artifact payload files, serialized, in manifest order.
std::vector<std::pair<std::string, std::string>> SerializeFiles(
    const PipelineArtifacts& artifacts) {
  std::vector<std::pair<std::string, std::string>> files;
  files.emplace_back("anchors.txt", JoinInts(artifacts.anchors) + "\n");
  files.emplace_back("groups.txt",
                     SerializeGroupLines(artifacts.candidate_groups));
  files.emplace_back("embeddings.txt",
                     SerializeMatrix(artifacts.group_embeddings));
  files.emplace_back("scores.txt", SerializeDoubles(artifacts.group_scores));
  // Scored groups are stored on their own (not rebuilt from groups+scores):
  // partial runs legitimately have scored_groups without group_scores.
  files.emplace_back("scored_groups.txt",
                     SerializeScoredGroups(artifacts.scored_groups));
  files.emplace_back("node_errors.txt",
                     SerializeDoubles(artifacts.gae_node_errors));
  files.emplace_back("tpgcl_loss.txt",
                     SerializeDoubles(artifacts.tpgcl_loss_history));
  return files;
}

struct ManifestInfo {
  int version = -1;
  uint64_t seed = 42;
  /// Element counts + dims declared at save time (num_anchors, num_groups,
  /// embedding_rows, embedding_dim, ...). Load cross-checks the parsed
  /// fields against whichever keys are present.
  std::map<std::string, long long> counts;
  struct FileEntry {
    std::string name;
    uint64_t bytes = 0;
    uint64_t checksum = 0;
  };
  std::vector<FileEntry> files;  ///< v2 only (empty for v1).
};

Result<ManifestInfo> ParseManifest(const std::string& content,
                                   const std::string& path) {
  ManifestInfo m;
  std::istringstream in(content);
  std::string line;
  if (!std::getline(in, line)) {
    return Status::InvalidArgument("empty manifest " + path);
  }
  {
    std::istringstream header(line);
    std::string key;
    if (!(header >> key >> m.version) || key != "grgad_artifacts_version") {
      return Status::InvalidArgument("malformed manifest " + path);
    }
  }
  if (m.version != kFormatVersion && m.version != kLegacyVersion) {
    return Status::InvalidArgument("unsupported artifact version " +
                                   std::to_string(m.version) + " in " + path);
  }
  while (std::getline(in, line)) {
    std::istringstream row(line);
    std::string key;
    if (!(row >> key)) continue;  // Blank line.
    if (key == "seed") {
      std::string value;
      if (!(row >> value) || !ParseUint64Text(value, &m.seed)) {
        return Status::InvalidArgument("bad seed in " + path);
      }
    } else if (key == "file") {
      ManifestInfo::FileEntry entry;
      std::string bytes_token, sum_token;
      if (!(row >> entry.name >> bytes_token >> sum_token)) {
        return Status::InvalidArgument("malformed file entry '" + line +
                                       "' in " + path);
      }
      if (!ParseUint64Text(bytes_token, &entry.bytes)) {
        return Status::InvalidArgument("bad file size '" + bytes_token +
                                       "' in " + path);
      }
      errno = 0;
      char* end = nullptr;
      entry.checksum = std::strtoull(sum_token.c_str(), &end, 16);
      if (end == sum_token.c_str() || *end != '\0' || errno == ERANGE) {
        return Status::InvalidArgument("bad checksum '" + sum_token + "' in " +
                                       path);
      }
      m.files.push_back(std::move(entry));
    } else {
      long long value = 0;
      if (row >> value) m.counts[key] = value;
      // Unknown non-numeric entries are informational; skip them.
    }
  }
  return m;
}

/// Cross-check of one parsed field's element count against the manifest's
/// declared count (skipped when the save predates the key).
Status CheckCount(const ManifestInfo& m, const std::string& key,
                  long long actual, const std::string& path) {
  auto it = m.counts.find(key);
  if (it == m.counts.end() || it->second == actual) return Status::Ok();
  return Status::DataLoss(path + ": manifest declares " + key + "=" +
                          std::to_string(it->second) + " but file has " +
                          std::to_string(actual));
}

}  // namespace

Status WriteArtifactFiles(const PipelineArtifacts& artifacts,
                          const std::string& dir) {
  namespace fs = std::filesystem;
  // Serialize everything up front so the durability window holds no compute.
  const auto files = SerializeFiles(artifacts);
  std::string manifest;
  manifest += "grgad_artifacts_version " + std::to_string(kFormatVersion);
  manifest += "\nseed " + std::to_string(artifacts.seed);
  manifest += "\nnum_anchors " + std::to_string(artifacts.anchors.size());
  manifest +=
      "\nnum_groups " + std::to_string(artifacts.candidate_groups.size());
  manifest += "\nembedding_rows " +
              std::to_string(artifacts.group_embeddings.rows());
  manifest += "\nembedding_dim " +
              std::to_string(artifacts.group_embeddings.cols());
  manifest += "\nnum_scores " + std::to_string(artifacts.group_scores.size());
  manifest +=
      "\nnum_scored_groups " + std::to_string(artifacts.scored_groups.size());
  manifest +=
      "\nnum_node_errors " + std::to_string(artifacts.gae_node_errors.size());
  manifest +=
      "\nnum_loss " + std::to_string(artifacts.tpgcl_loss_history.size());
  manifest += '\n';
  for (const auto& [name, content] : files) {
    manifest += "file " + name + " " + std::to_string(content.size()) + " " +
                HexU64(Fnv1a64(content)) + "\n";
  }

  const fs::path base(dir);
  GRGAD_RETURN_IF_ERROR(WriteTextFile((base / kManifestFile).string(),
                                      manifest));
  for (const auto& [name, content] : files) {
    GRGAD_RETURN_IF_ERROR(WriteTextFile((base / name).string(), content));
  }
  GRGAD_RETURN_IF_ERROR(
      FsyncPath((base / kManifestFile).string(), /*is_dir=*/false));
  for (const auto& [name, content] : files) {
    GRGAD_RETURN_IF_ERROR(FsyncPath((base / name).string(),
                                    /*is_dir=*/false));
  }
  return FsyncPath(base.string(), /*is_dir=*/true);
}

Status SaveArtifacts(const PipelineArtifacts& artifacts,
                     const std::string& dir) {
  namespace fs = std::filesystem;
  // Atomic replace: stage everything in a sibling tmp dir, make it durable,
  // then commit with renames. A crash or injected fault at any point leaves
  // either the previous artifacts or (mid-dance) no directory — never a
  // torn mixture that parses.
  const fs::path target(dir);
  const fs::path tmp(dir + ".tmp");
  std::error_code ec;
  fs::remove_all(tmp, ec);  // Stale leftovers from a crashed save.
  fs::remove_all(fs::path(dir + ".old"), ec);
  if (target.has_parent_path()) {
    fs::create_directories(target.parent_path(), ec);
  }
  ec.clear();
  fs::create_directories(tmp, ec);
  if (ec) {
    return Status::IoError("cannot create " + tmp.string() + ": " +
                           ec.message());
  }
  if (Status staged = WriteArtifactFiles(artifacts, tmp.string());
      !staged.ok()) {
    fs::remove_all(tmp, ec);
    return staged;
  }
  return CommitDirReplace(tmp.string(), dir);
}

Result<PipelineArtifacts> LoadArtifacts(const std::string& dir) {
  namespace fs = std::filesystem;
  const std::string manifest_path = PathIn(dir, kManifestFile);
  if (!fs::exists(manifest_path)) {
    return Status::NotFound("no artifact manifest at " + manifest_path);
  }
  auto manifest_content = ReadTextFile(manifest_path);
  if (!manifest_content.ok()) return manifest_content.status();
  auto manifest = ParseManifest(manifest_content.value(), manifest_path);
  if (!manifest.ok()) return manifest.status();
  const ManifestInfo& m = manifest.value();

  // Integrity sweep before any parsing: every manifest-listed file must be
  // present, exactly its recorded size, and checksum-clean. Each file is
  // read once here and parsed from memory below. v1 directories predate
  // the checksums and skip straight to parsing.
  std::map<std::string, std::string> contents;
  for (const auto& entry : m.files) {
    const std::string path = PathIn(dir, entry.name.c_str());
    std::error_code ec;
    if (!fs::exists(path, ec)) {
      return Status::DataLoss("missing artifact file " + path);
    }
    auto content = ReadTextFile(path);
    if (!content.ok()) return content.status();
    if (content.value().size() != entry.bytes) {
      return Status::DataLoss(
          "truncated artifact file " + path + ": manifest records " +
          std::to_string(entry.bytes) + " bytes, found " +
          std::to_string(content.value().size()));
    }
    if (Fnv1a64(content.value()) != entry.checksum) {
      return Status::DataLoss("checksum mismatch in " + path +
                              " (corrupt artifact)");
    }
    contents[entry.name] = std::move(content).value();
  }
  const auto get = [&](const char* name) -> Result<std::string> {
    if (m.version == kLegacyVersion) return ReadTextFile(PathIn(dir, name));
    auto it = contents.find(name);
    if (it == contents.end()) {
      return Status::DataLoss("manifest " + manifest_path +
                              " has no file entry for " + name);
    }
    return it->second;
  };

  PipelineArtifacts artifacts;
  artifacts.seed = m.seed;
  {
    const std::string path = PathIn(dir, "anchors.txt");
    auto content = get("anchors.txt");
    if (!content.ok()) return content.status();
    auto anchors = ParseInts(content.value(), path);
    if (!anchors.ok()) return anchors.status();
    artifacts.anchors = std::move(anchors).value();
    GRGAD_RETURN_IF_ERROR(CheckCount(
        m, "num_anchors", static_cast<long long>(artifacts.anchors.size()),
        path));
  }
  {
    const std::string path = PathIn(dir, "groups.txt");
    auto content = get("groups.txt");
    if (!content.ok()) return content.status();
    auto groups = ParseGroupLines(content.value(), path);
    if (!groups.ok()) return groups.status();
    artifacts.candidate_groups = std::move(groups).value();
    GRGAD_RETURN_IF_ERROR(CheckCount(
        m, "num_groups",
        static_cast<long long>(artifacts.candidate_groups.size()), path));
  }
  {
    const std::string path = PathIn(dir, "embeddings.txt");
    auto content = get("embeddings.txt");
    if (!content.ok()) return content.status();
    auto matrix = ParseMatrix(content.value(), path);
    if (!matrix.ok()) return matrix.status();
    artifacts.group_embeddings = std::move(matrix).value();
    GRGAD_RETURN_IF_ERROR(CheckCount(
        m, "embedding_rows",
        static_cast<long long>(artifacts.group_embeddings.rows()), path));
    GRGAD_RETURN_IF_ERROR(CheckCount(
        m, "embedding_dim",
        static_cast<long long>(artifacts.group_embeddings.cols()), path));
  }
  {
    const std::string path = PathIn(dir, "scores.txt");
    auto content = get("scores.txt");
    if (!content.ok()) return content.status();
    auto scores = ParseDoubles(content.value(), path);
    if (!scores.ok()) return scores.status();
    artifacts.group_scores = std::move(scores).value();
    GRGAD_RETURN_IF_ERROR(CheckCount(
        m, "num_scores",
        static_cast<long long>(artifacts.group_scores.size()), path));
  }
  {
    const std::string path = PathIn(dir, "scored_groups.txt");
    auto content = get("scored_groups.txt");
    if (!content.ok()) return content.status();
    auto scored = ParseScoredGroups(content.value(), path);
    if (!scored.ok()) return scored.status();
    artifacts.scored_groups = std::move(scored).value();
    GRGAD_RETURN_IF_ERROR(CheckCount(
        m, "num_scored_groups",
        static_cast<long long>(artifacts.scored_groups.size()), path));
  }
  {
    const std::string path = PathIn(dir, "node_errors.txt");
    auto content = get("node_errors.txt");
    if (!content.ok()) return content.status();
    auto errors = ParseDoubles(content.value(), path);
    if (!errors.ok()) return errors.status();
    artifacts.gae_node_errors = std::move(errors).value();
    GRGAD_RETURN_IF_ERROR(CheckCount(
        m, "num_node_errors",
        static_cast<long long>(artifacts.gae_node_errors.size()), path));
  }
  {
    const std::string path = PathIn(dir, "tpgcl_loss.txt");
    auto content = get("tpgcl_loss.txt");
    if (!content.ok()) return content.status();
    auto loss = ParseDoubles(content.value(), path);
    if (!loss.ok()) return loss.status();
    artifacts.tpgcl_loss_history = std::move(loss).value();
    GRGAD_RETURN_IF_ERROR(CheckCount(
        m, "num_loss",
        static_cast<long long>(artifacts.tpgcl_loss_history.size()), path));
  }
  return artifacts;
}

bool ArtifactLoadRetryable(const Status& status) {
  return DefaultRetryable(status) || status.code() == StatusCode::kNotFound;
}

}  // namespace grgad
