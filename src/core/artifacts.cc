#include "src/core/artifacts.h"

#include "src/core/options.h"

#include <cerrno>
#include <climits>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace grgad {
namespace {

constexpr int kFormatVersion = 1;
constexpr const char* kManifestFile = "manifest.txt";

// 17 significant digits round-trip any finite double exactly.
std::string FormatExact(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

Status WriteFile(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return Status::IoError("cannot open for write: " + path);
  out << content;
  out.flush();
  if (!out) return Status::IoError("write failed: " + path);
  return Status::Ok();
}

Result<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

std::string JoinInts(const std::vector<int>& v) {
  std::string out;
  for (size_t i = 0; i < v.size(); ++i) {
    if (i) out += ' ';
    out += std::to_string(v[i]);
  }
  return out;
}

Status SaveDoubles(const std::vector<double>& v, const std::string& path) {
  std::string content;
  for (double x : v) {
    content += FormatExact(x);
    content += '\n';
  }
  return WriteFile(path, content);
}

Result<std::vector<double>> LoadDoubles(const std::string& path) {
  auto content = ReadFile(path);
  if (!content.ok()) return content.status();
  std::istringstream in(content.value());
  std::vector<double> out;
  std::string token;
  while (in >> token) {
    errno = 0;
    char* end = nullptr;
    const double x = std::strtod(token.c_str(), &end);
    if (end == token.c_str() || *end != '\0') {
      return Status::InvalidArgument("bad double '" + token + "' in " + path);
    }
    out.push_back(x);
  }
  return out;
}

Result<std::vector<int>> ParseInts(const std::string& line,
                                   const std::string& path) {
  std::istringstream in(line);
  std::vector<int> out;
  std::string token;
  while (in >> token) {
    errno = 0;
    char* end = nullptr;
    const long long x = std::strtoll(token.c_str(), &end, 10);
    if (end == token.c_str() || *end != '\0' || errno == ERANGE ||
        x < INT_MIN || x > INT_MAX) {
      return Status::InvalidArgument("bad integer '" + token + "' in " + path);
    }
    out.push_back(static_cast<int>(x));
  }
  return out;
}

// One group per line; a leading count line distinguishes "no groups" from
// "one empty group".
Status SaveGroupLines(const std::vector<std::vector<int>>& groups,
                      const std::string& path) {
  std::string content = std::to_string(groups.size()) + "\n";
  for (const auto& group : groups) {
    content += JoinInts(group);
    content += '\n';
  }
  return WriteFile(path, content);
}

Result<std::vector<std::vector<int>>> LoadGroupLines(const std::string& path) {
  auto content = ReadFile(path);
  if (!content.ok()) return content.status();
  std::istringstream in(content.value());
  std::string line;
  if (!std::getline(in, line)) {
    return Status::InvalidArgument("missing count line in " + path);
  }
  auto count = ParseInts(line, path);
  if (!count.ok()) return count.status();
  if (count.value().size() != 1 || count.value()[0] < 0) {
    return Status::InvalidArgument("bad count line in " + path);
  }
  // No reserve: an absurd count line fails on the missing rows below
  // instead of attempting a giant allocation.
  std::vector<std::vector<int>> groups;
  for (int i = 0; i < count.value()[0]; ++i) {
    if (!std::getline(in, line)) {
      return Status::InvalidArgument("truncated group file " + path);
    }
    auto group = ParseInts(line, path);
    if (!group.ok()) return group.status();
    groups.push_back(std::move(group).value());
  }
  return groups;
}

Status SaveMatrix(const Matrix& m, const std::string& path) {
  std::string content =
      std::to_string(m.rows()) + " " + std::to_string(m.cols()) + "\n";
  for (size_t i = 0; i < m.rows(); ++i) {
    for (size_t j = 0; j < m.cols(); ++j) {
      if (j) content += ' ';
      content += FormatExact(m(i, j));
    }
    content += '\n';
  }
  return WriteFile(path, content);
}

Result<Matrix> LoadMatrix(const std::string& path) {
  auto content = ReadFile(path);
  if (!content.ok()) return content.status();
  std::istringstream in(content.value());
  long long rows = 0, cols = 0;
  if (!(in >> rows >> cols)) {
    return Status::InvalidArgument("missing dims line in " + path);
  }
  // Guard the allocation: dims come from an untrusted file.
  constexpr long long kMaxElements = 1LL << 28;  // 256M doubles = 2 GiB.
  if (rows < 0 || cols < 0 || (cols > 0 && rows > kMaxElements / cols)) {
    return Status::InvalidArgument("implausible dims " + std::to_string(rows) +
                                   "x" + std::to_string(cols) + " in " + path);
  }
  Matrix m(static_cast<size_t>(rows), static_cast<size_t>(cols));
  for (size_t i = 0; i < m.rows(); ++i) {
    for (size_t j = 0; j < m.cols(); ++j) {
      std::string token;
      if (!(in >> token)) {
        return Status::InvalidArgument("truncated matrix file " + path);
      }
      char* end = nullptr;
      m(i, j) = std::strtod(token.c_str(), &end);
      if (end == token.c_str() || *end != '\0') {
        return Status::InvalidArgument("bad double '" + token + "' in " +
                                       path);
      }
    }
  }
  return m;
}

std::string PathIn(const std::string& dir, const char* file) {
  return (std::filesystem::path(dir) / file).string();
}

}  // namespace

Status SaveArtifacts(const PipelineArtifacts& artifacts,
                     const std::string& dir) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) return Status::IoError("cannot create " + dir + ": " + ec.message());

  std::string manifest;
  manifest += "grgad_artifacts_version " + std::to_string(kFormatVersion);
  manifest += "\nseed " + std::to_string(artifacts.seed);
  manifest += "\nnum_anchors " + std::to_string(artifacts.anchors.size());
  manifest +=
      "\nnum_groups " + std::to_string(artifacts.candidate_groups.size());
  manifest += "\nembedding_dim " +
              std::to_string(artifacts.group_embeddings.cols()) + "\n";
  GRGAD_RETURN_IF_ERROR(WriteFile(PathIn(dir, kManifestFile), manifest));

  GRGAD_RETURN_IF_ERROR(WriteFile(PathIn(dir, "anchors.txt"),
                                  JoinInts(artifacts.anchors) + "\n"));
  GRGAD_RETURN_IF_ERROR(
      SaveGroupLines(artifacts.candidate_groups, PathIn(dir, "groups.txt")));
  GRGAD_RETURN_IF_ERROR(
      SaveMatrix(artifacts.group_embeddings, PathIn(dir, "embeddings.txt")));
  GRGAD_RETURN_IF_ERROR(
      SaveDoubles(artifacts.group_scores, PathIn(dir, "scores.txt")));
  // Scored groups are stored on their own (not rebuilt from groups+scores):
  // partial runs legitimately have scored_groups without group_scores.
  std::string scored;
  scored += std::to_string(artifacts.scored_groups.size());
  scored += '\n';
  for (const ScoredGroup& sg : artifacts.scored_groups) {
    scored += FormatExact(sg.score);
    for (int v : sg.nodes) {
      scored += ' ';
      scored += std::to_string(v);
    }
    scored += '\n';
  }
  GRGAD_RETURN_IF_ERROR(WriteFile(PathIn(dir, "scored_groups.txt"), scored));
  GRGAD_RETURN_IF_ERROR(SaveDoubles(artifacts.gae_node_errors,
                                    PathIn(dir, "node_errors.txt")));
  GRGAD_RETURN_IF_ERROR(SaveDoubles(artifacts.tpgcl_loss_history,
                                    PathIn(dir, "tpgcl_loss.txt")));
  return Status::Ok();
}

Result<PipelineArtifacts> LoadArtifacts(const std::string& dir) {
  const std::string manifest_path = PathIn(dir, kManifestFile);
  if (!std::filesystem::exists(manifest_path)) {
    return Status::NotFound("no artifact manifest at " + manifest_path);
  }
  auto manifest = ReadFile(manifest_path);
  if (!manifest.ok()) return manifest.status();
  PipelineArtifacts artifacts;
  {
    std::istringstream in(manifest.value());
    std::string key;
    int version = -1;
    if (!(in >> key >> version) || key != "grgad_artifacts_version") {
      return Status::InvalidArgument("malformed manifest " + manifest_path);
    }
    if (version != kFormatVersion) {
      return Status::InvalidArgument(
          "unsupported artifact version " + std::to_string(version) + " in " +
          manifest_path);
    }
    std::string value;
    while (in >> key >> value) {
      if (key == "seed") {
        if (!ParseUint64Text(value, &artifacts.seed)) {
          return Status::InvalidArgument("bad seed '" + value + "' in " +
                                         manifest_path);
        }
      }
      // Remaining manifest entries (counts, dims) are informational.
    }
  }
  {
    auto content = ReadFile(PathIn(dir, "anchors.txt"));
    if (!content.ok()) return content.status();
    auto anchors = ParseInts(content.value(), PathIn(dir, "anchors.txt"));
    if (!anchors.ok()) return anchors.status();
    artifacts.anchors = std::move(anchors).value();
  }
  {
    auto groups = LoadGroupLines(PathIn(dir, "groups.txt"));
    if (!groups.ok()) return groups.status();
    artifacts.candidate_groups = std::move(groups).value();
  }
  {
    auto m = LoadMatrix(PathIn(dir, "embeddings.txt"));
    if (!m.ok()) return m.status();
    artifacts.group_embeddings = std::move(m).value();
  }
  {
    auto scores = LoadDoubles(PathIn(dir, "scores.txt"));
    if (!scores.ok()) return scores.status();
    artifacts.group_scores = std::move(scores).value();
  }
  {
    const std::string path = PathIn(dir, "scored_groups.txt");
    auto content = ReadFile(path);
    if (!content.ok()) return content.status();
    std::istringstream in(content.value());
    std::string line;
    if (!std::getline(in, line)) {
      return Status::InvalidArgument("missing count line in " + path);
    }
    auto count_line = ParseInts(line, path);
    if (!count_line.ok()) return count_line.status();
    if (count_line.value().size() != 1 || count_line.value()[0] < 0) {
      return Status::InvalidArgument("bad count line in " + path);
    }
    const int count = count_line.value()[0];
    for (int i = 0; i < count; ++i) {
      if (!std::getline(in, line)) {
        return Status::InvalidArgument("truncated scored-group file " + path);
      }
      std::istringstream row(line);
      ScoredGroup sg;
      std::string score_token;
      if (!(row >> score_token)) {
        return Status::InvalidArgument("empty scored-group row in " + path);
      }
      char* end = nullptr;
      sg.score = std::strtod(score_token.c_str(), &end);
      if (end == score_token.c_str() || *end != '\0') {
        return Status::InvalidArgument("bad score '" + score_token + "' in " +
                                       path);
      }
      int v;
      while (row >> v) sg.nodes.push_back(v);
      artifacts.scored_groups.push_back(std::move(sg));
    }
  }
  {
    auto errors = LoadDoubles(PathIn(dir, "node_errors.txt"));
    if (!errors.ok()) return errors.status();
    artifacts.gae_node_errors = std::move(errors).value();
  }
  {
    auto loss = LoadDoubles(PathIn(dir, "tpgcl_loss.txt"));
    if (!loss.ok()) return loss.status();
    artifacts.tpgcl_loss_history = std::move(loss).value();
  }
  return artifacts;
}

}  // namespace grgad
