// The pipeline's stage outputs, and their persistence.
//
// PipelineArtifacts is everything a TP-GrGAD run produces, stage by stage.
// Save/Load round-trip a run to a directory of small text files so a later
// process can resume from any intermediate product — most usefully,
// re-scoring saved TPGCL embeddings with a different outlier detector
// (RescoreArtifacts in stages.h) without re-training anything. All floating
// point values are written with 17 significant digits, which round-trips
// IEEE-754 doubles exactly: reloaded artifacts score bit-identically.
#ifndef GRGAD_CORE_ARTIFACTS_H_
#define GRGAD_CORE_ARTIFACTS_H_

#include <string>
#include <vector>

#include "src/core/types.h"
#include "src/tensor/matrix.h"
#include "src/util/status.h"

namespace grgad {

/// Everything the pipeline produces, stage by stage.
struct PipelineArtifacts {
  /// Provenance: the pipeline seed of the run that produced these (recorded
  /// in the manifest so a later rescore can reproduce detector seeding).
  uint64_t seed = 42;
  std::vector<int> anchors;
  std::vector<std::vector<int>> candidate_groups;
  Matrix group_embeddings;          ///< m x embed (or m x attr_dim w/o TPGCL).
  std::vector<double> group_scores; ///< Detector output, aligned to groups.
  std::vector<ScoredGroup> scored_groups;
  std::vector<double> gae_node_errors;
  std::vector<double> tpgcl_loss_history;
};

/// Writes `artifacts` under `dir` atomically: everything is staged in a
/// sibling `<dir>.tmp`, fsynced, then committed by rename, replacing any
/// previous artifacts. On ANY failure the previous contents of `dir` are
/// left intact (a hard crash between the commit renames can leave `dir`
/// absent — NotFound on load, never a torn mixture). The manifest records
/// per-file sizes and FNV-1a checksums so Load can verify integrity.
Status SaveArtifacts(const PipelineArtifacts& artifacts,
                     const std::string& dir);

/// Writes the artifact file set (manifest + payload files) directly into the
/// EXISTING directory `dir` and fsyncs each file plus the directory, with no
/// staging or rename commit of its own. Building block for composite
/// snapshots that stage several stores in one tmp directory and publish them
/// with a single CommitDirReplace; SaveArtifacts is this plus the dance.
Status WriteArtifactFiles(const PipelineArtifacts& artifacts,
                          const std::string& dir);

/// Loads a directory written by SaveArtifacts. Fails with NotFound when no
/// manifest is present, DataLoss when a file is missing, truncated,
/// checksum-corrupt, or disagrees with the manifest's recorded counts/dims
/// (v2 directories), and IoError/InvalidArgument on unreadable or malformed
/// files. The result compares field-for-field identical to what was saved.
Result<PipelineArtifacts> LoadArtifacts(const std::string& dir);

/// Retry predicate for LoadArtifacts under concurrent writers: transient
/// read failures (kIoError, the DefaultRetryable category) AND kNotFound.
/// SaveArtifacts commits by renaming `dir` away and the staged replacement
/// into place, so a reader racing the commit can observe the directory
/// briefly absent; that NotFound heals on the next attempt. A directory
/// that never existed also retries — callers pay the bounded backoff
/// (~seconds) before the NotFound surfaces, which is the price of not being
/// able to distinguish the two from the reader's side.
bool ArtifactLoadRetryable(const Status& status);

}  // namespace grgad

#endif  // GRGAD_CORE_ARTIFACTS_H_
