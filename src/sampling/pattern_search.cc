#include "src/sampling/pattern_search.h"

#include <algorithm>
#include <set>

#include "src/graph/algorithms.h"

namespace grgad {

namespace {

/// All canonical simple cycles of a small graph, up to caps.
template <typename G>
std::vector<std::vector<int>> FindCycles(const G& g, int max_len,
                                         int max_cycles) {
  std::vector<std::vector<int>> out;
  std::set<std::vector<int>> seen;
  for (int v = 0; v < g.num_nodes(); ++v) {
    if (static_cast<int>(out.size()) >= max_cycles) break;
    for (auto& cycle : CyclesThrough(g, v, max_len, max_cycles)) {
      std::vector<int> key = cycle;
      std::sort(key.begin(), key.end());
      if (seen.insert(key).second) {
        out.push_back(std::move(cycle));
        if (static_cast<int>(out.size()) >= max_cycles) break;
      }
    }
  }
  return out;
}

/// The one pattern-search implementation, generic over Graph/SubgraphView.
template <typename G>
FoundPatterns SearchPatternsImpl(const G& group_graph,
                                 const PatternSearchOptions& options) {
  FoundPatterns out;
  const int n = group_graph.num_nodes();
  if (n < 2) return out;

  // --- Cycles. ---
  out.cycles = FindCycles(group_graph, options.cycle_max_len,
                          options.max_cycles);
  std::vector<uint8_t> on_cycle(n, 0);
  for (const auto& cycle : out.cycles) {
    for (int v : cycle) on_cycle[v] = 1;
  }

  // --- Paths: maximal chains between degree-1 endpoints (off-cycle). ---
  std::vector<int> endpoints;
  for (int v = 0; v < n; ++v) {
    if (group_graph.Degree(v) == 1 && !on_cycle[v]) endpoints.push_back(v);
  }
  for (size_t a = 0;
       a < endpoints.size() &&
       static_cast<int>(out.paths.size()) < options.max_paths;
       ++a) {
    for (size_t b = a + 1;
         b < endpoints.size() &&
         static_cast<int>(out.paths.size()) < options.max_paths;
         ++b) {
      std::vector<int> path =
          ShortestPath(group_graph, endpoints[a], endpoints[b]);
      if (static_cast<int>(path.size()) < 3) continue;
      // Pure chain: every interior node has degree exactly 2 (a walk
      // through a branching node belongs to a tree pattern, not a path).
      bool pure = true;
      for (size_t k = 1; k + 1 < path.size(); ++k) {
        pure &= (group_graph.Degree(path[k]) == 2);
      }
      if (pure) out.paths.push_back(std::move(path));
    }
  }

  // --- Trees: BFS trees rooted at branching nodes of the acyclic part. ---
  for (int root = 0;
       root < n && static_cast<int>(out.trees.size()) < options.max_trees;
       ++root) {
    if (on_cycle[root]) continue;
    if (group_graph.Degree(root) < options.min_tree_children) continue;
    const BfsTree bfs = BuildBfsTree(group_graph, root, /*max_depth=*/-1);
    // Count root children actually reached and check the reached region is
    // acyclic (|edges inside| == |nodes| - 1).
    std::vector<int> reached;
    for (int u : bfs.order) {
      if (!on_cycle[u]) reached.push_back(u);
    }
    if (static_cast<int>(reached.size()) < options.min_tree_children + 1) {
      continue;
    }
    int internal_edges = 0;
    std::vector<uint8_t> in_reach(n, 0);
    for (int u : reached) in_reach[u] = 1;
    for (int u : reached) {
      for (int w : group_graph.Neighbors(u)) {
        if (w > u && in_reach[w]) ++internal_edges;
      }
    }
    if (internal_edges != static_cast<int>(reached.size()) - 1) continue;
    int root_children = 0;
    for (int w : group_graph.Neighbors(root)) {
      if (in_reach[w]) ++root_children;
    }
    if (root_children < options.min_tree_children) continue;
    out.trees.push_back(std::move(reached));  // Root-first (BFS order).
  }
  return out;
}

template <typename G>
TopologyPattern ClassifyGroupPatternImpl(const G& group_graph) {
  const int n = group_graph.num_nodes();
  const int m = group_graph.num_edges();
  if (n <= 1) return TopologyPattern::kMixed;
  // Cyclic content.
  PatternSearchOptions options;
  options.cycle_max_len = std::min(64, n);
  options.max_cycles = 16;
  const auto cycles = FindCycles(group_graph, options.cycle_max_len,
                                 options.max_cycles);
  if (!cycles.empty()) {
    std::vector<uint8_t> on_cycle(n, 0);
    int covered = 0;
    for (const auto& cycle : cycles) {
      for (int v : cycle) {
        if (!on_cycle[v]) {
          on_cycle[v] = 1;
          ++covered;
        }
      }
    }
    return covered * 2 >= n ? TopologyPattern::kCycle
                            : TopologyPattern::kMixed;
  }
  // Acyclic: m <= n-1 (forest).
  (void)m;
  int max_deg = 0;
  for (int v = 0; v < n; ++v) max_deg = std::max(max_deg,
                                                 group_graph.Degree(v));
  return max_deg <= 2 ? TopologyPattern::kPath : TopologyPattern::kTree;
}

}  // namespace

FoundPatterns SearchPatterns(const Graph& group_graph,
                             const PatternSearchOptions& options) {
  return SearchPatternsImpl(group_graph, options);
}

FoundPatterns SearchPatterns(const SubgraphView& group_view,
                             const PatternSearchOptions& options) {
  return SearchPatternsImpl(group_view, options);
}

TopologyPattern ClassifyGroupPattern(const Graph& group_graph) {
  return ClassifyGroupPatternImpl(group_graph);
}

TopologyPattern ClassifyGroupPattern(const SubgraphView& group_view) {
  return ClassifyGroupPatternImpl(group_view);
}

}  // namespace grgad
