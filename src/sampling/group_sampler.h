// Candidate-group sampling (paper Alg. 1): starting from MH-GAE's anchor
// nodes, sample path, tree, and cycle groups that may be anomalous.
//
// For every anchor pair (v, µ) within reach: PathSearch finds the cheapest
// v–µ path — by hop count, or (default) by attribute-distance edge costs
// via Dijkstra, the weighted-search reading of the paper's Bellman–Ford
// citation (criminal groups share coherent attributes, so cheap edges trace
// the group instead of shortcutting through the background). TreeSearch
// emits the union of the search-tree paths from v to its nearest anchors —
// the hierarchical structure *between* anchors. CycleSearch enumerates
// simple cycles through each anchor. Additionally (extension, on by
// default), the connected components of the anchor set itself — bridged
// across single non-anchor gaps — are emitted, mirroring how Sub-GAD
// methods consolidate anomalous nodes.
//
// Overlapping and near-duplicate candidates are intentionally kept (§V-C1
// notes they help TPGCL); only exact duplicates are dropped. When more than
// `max_groups` candidates accumulate, a seeded uniform subsample is
// returned so every anchor contributes, rather than truncating the anchor
// loop.
//
// Execution: with the candidate fast path on (src/util/fastpath.h, the
// default), anchors fan out over the persistent thread pool with pooled
// per-worker TraversalWorkspaces, per-adjacency-slot Dijkstra costs
// precomputed once per call, and one Bellman–Ford per anchor; per-anchor
// candidate lists are then merged in ascending anchor order, so the output
// — groups, order, and the seeded subsample draw — is bitwise identical to
// the frozen serial seed path at any GRGAD_THREADS
// (tests/candidate_determinism_test.cc).
#ifndef GRGAD_SAMPLING_GROUP_SAMPLER_H_
#define GRGAD_SAMPLING_GROUP_SAMPLER_H_

#include <vector>

#include "src/graph/graph.h"
#include "src/util/cancel.h"

namespace grgad {

/// Path-search edge-cost mode.
enum class PathSearchMode {
  kUnweighted,          ///< Hop count (BFS back-pointers).
  kAttributeDistance,   ///< Dijkstra with cost eps + ||x_u - x_v||.
  kGraphSnnWeighted,    ///< Bellman–Ford with cost 1 / (eps + Ã_uv).
};

/// Alg. 1 knobs.
struct GroupSamplerOptions {
  /// Tree search: union of paths from an anchor to its `tree_fanout`
  /// nearest anchors (within pair_radius hops).
  int tree_fanout = 10;
  /// Path candidates emitted per anchor (nearest anchors first); keeps the
  /// candidate pool from being dominated by one dense anchor cluster.
  int max_paths_per_anchor = 8;
  /// Candidate size bounds; larger path/tree results are truncated.
  int min_group_size = 3;
  int max_group_size = 32;
  /// Cycle search: maximum cycle length, per-anchor cycle budget, and a DFS
  /// step budget per anchor (simple-path enumeration is exponential in
  /// cycle_max_len on dense regions; the budget truncates deterministically).
  int cycle_max_len = 12;
  int max_cycles_per_anchor = 16;
  int64_t cycle_max_steps = 60000;
  /// Anchor pairs are only expanded when within this hop distance (pairs
  /// farther apart than the size cap cannot yield a valid group).
  int pair_radius = 32;
  /// Cap on returned candidates (0 = unlimited); enforced by seeded
  /// subsampling, not by truncating the anchor loop.
  int max_groups = 2048;
  /// Seed for the subsampling draw.
  uint64_t seed = 13;
  /// Path-search cost model.
  PathSearchMode path_mode = PathSearchMode::kAttributeDistance;
  double attribute_cost_eps = 0.25;
  double graphsnn_cost_eps = 0.25;
  /// Extension: also emit connected components of the anchor set, bridging
  /// single non-anchor gaps between two anchors.
  bool include_anchor_components = true;
  /// Cooperative stop token, polled once per anchor. When it fires mid-call
  /// the sampler abandons the remaining anchors and returns early; the
  /// partial result must not be consumed — callers that handed out the
  /// token check stop_requested() and unwind (the pipeline maps the reason
  /// to a typed Status).
  CancelToken cancel;
};

/// Optional per-phase wall-time breakdown of one Sample() call, surfaced by
/// the candidate stage as "candidates/*" sub-stage timings under --profile.
struct SampleTelemetry {
  double search_seconds = 0.0;      ///< Per-anchor traversal fan-out.
  double components_seconds = 0.0;  ///< Anchor-component extension.
  double select_seconds = 0.0;      ///< Dedup merge + seeded subsample.
};

/// Candidate-group sampler (Alg. 1).
class GroupSampler {
 public:
  explicit GroupSampler(GroupSamplerOptions options = {});

  /// Samples candidate groups from `anchors`; each group is a sorted list of
  /// node ids in `g`. Exact duplicates are removed; overlaps are kept.
  std::vector<std::vector<int>> Sample(const Graph& g,
                                       const std::vector<int>& anchors) const;

  /// Sample with an optional per-phase timing breakdown (nullptr skips the
  /// clock reads entirely).
  std::vector<std::vector<int>> Sample(const Graph& g,
                                       const std::vector<int>& anchors,
                                       SampleTelemetry* telemetry) const;

  /// The fast path's per-anchor fan-out, restricted to `anchor_indices`:
  /// recomputes the pre-dedup candidate lists of exactly those anchors into
  /// (*per_anchor)[index] (the outer vector is resized to anchors.size();
  /// entries of untouched anchors are preserved). This is the building
  /// block the incremental-refresh path uses to re-sample only dirty
  /// anchors while reusing cached lists for the clean ones —
  /// ResampleAnchors over ALL indices followed by FinalizeCandidates is
  /// exactly Sample()'s fast path, so a cached-plus-dirty merge is bitwise
  /// identical to a from-scratch Sample() at any GRGAD_THREADS.
  void ResampleAnchors(
      const Graph& g, const std::vector<int>& anchors,
      const std::vector<int>& anchor_indices,
      std::vector<std::vector<std::vector<int>>>* per_anchor,
      SampleTelemetry* telemetry = nullptr) const;

  /// The fast path's tail over (possibly cached) per-anchor candidate
  /// lists: the anchor-component extension, the deterministic
  /// ascending-anchor dedup merge, and the seeded subsample. Pure over its
  /// inputs — the per-anchor lists are copied, never consumed, so callers
  /// can keep them cached across refreshes.
  std::vector<std::vector<int>> FinalizeCandidates(
      const Graph& g, const std::vector<int>& anchors,
      const std::vector<std::vector<std::vector<int>>>& per_anchor,
      SampleTelemetry* telemetry = nullptr) const;

  /// Releases the pooled traversal workspaces (the shared BFS pool and the
  /// sampler's weighted-search pool), dropping buffer capacity retained
  /// from the largest graph sampled so far. For long-lived processes
  /// switching to much smaller graphs; the next Sample() re-warms.
  static void TrimWorkspaces();

  /// Pre-grows both pools for `g`-sized traversals under `options` — the
  /// exact Prewarm calls Sample() issues on its fast path, so a subsequent
  /// Sample() over `g` performs zero workspace heap allocations
  /// (TraversalWorkspace::TotalHeapAllocs stays flat). `count` below the
  /// parallelism degree is raised to it: Sample() leases one workspace pair
  /// per worker, so fewer instances would still grow on the first call.
  /// Call with no leases outstanding.
  static void PrewarmWorkspaces(const Graph& g,
                                const GroupSamplerOptions& options, int count);

 private:
  // The frozen seed shape: one anchor at a time, fresh traversal buffers
  // per call, per-pair Bellman–Ford (micro_benchmarks measures this against
  // the fast path; SetCandidateFastPath(false) routes here).
  std::vector<std::vector<int>> SampleSeed(const Graph& g,
                                           const std::vector<int>& anchors,
                                           SampleTelemetry* telemetry) const;
  // Anchor-parallel workspace-backed fast path; bitwise-identical output.
  std::vector<std::vector<int>> SampleFast(const Graph& g,
                                           const std::vector<int>& anchors,
                                           SampleTelemetry* telemetry) const;

  GroupSamplerOptions options_;
};

}  // namespace grgad

#endif  // GRGAD_SAMPLING_GROUP_SAMPLER_H_
