#include "src/sampling/dirty_tracker.h"

#include <algorithm>
#include <numeric>

namespace grgad {

bool IncrementalInvalidationSound(const GroupSamplerOptions& options) {
  return options.path_mode == PathSearchMode::kUnweighted;
}

int InvalidationRadius(const GroupSamplerOptions& options) {
  return std::max(options.pair_radius, options.cycle_max_len);
}

void AnchorDirtyTracker::Reset(const std::vector<int>& anchors, int radius,
                               int num_nodes) {
  radius_ = radius;
  all_dirty_ = false;
  dirty_count_ = 0;
  dirty_.assign(anchors.size(), 0);
  anchor_index_of_.assign(static_cast<size_t>(num_nodes), -1);
  for (size_t i = 0; i < anchors.size(); ++i) {
    // Out-of-range anchors (artifacts that disagree with the graph) can
    // never be ball-marked; they still refresh via the unprimed full pass.
    if (anchors[i] >= 0 && anchors[i] < num_nodes) {
      anchor_index_of_[anchors[i]] = static_cast<int>(i);
    }
  }
  stamp_.assign(static_cast<size_t>(num_nodes), 0);
  epoch_ = 0;
}

void AnchorDirtyTracker::MarkAll() {
  all_dirty_ = true;
  std::fill(dirty_.begin(), dirty_.end(), 1);
  dirty_count_ = dirty_.size();
}

void AnchorDirtyTracker::MarkIndex(int anchor_index) {
  if (anchor_index < 0 ||
      static_cast<size_t>(anchor_index) >= dirty_.size()) {
    return;
  }
  if (!dirty_[anchor_index]) {
    dirty_[anchor_index] = 1;
    ++dirty_count_;
  }
}

std::vector<int> AnchorDirtyTracker::PeekDirtyIndices() const {
  std::vector<int> indices;
  indices.reserve(dirty_count_);
  if (all_dirty_) {
    indices.resize(dirty_.size());
    std::iota(indices.begin(), indices.end(), 0);
  } else {
    for (size_t i = 0; i < dirty_.size(); ++i) {
      if (dirty_[i]) indices.push_back(static_cast<int>(i));
    }
  }
  return indices;
}

std::vector<int> AnchorDirtyTracker::TakeDirtyIndices() {
  std::vector<int> indices;
  indices.reserve(dirty_count_);
  if (all_dirty_) {
    indices.resize(dirty_.size());
    std::iota(indices.begin(), indices.end(), 0);
  } else {
    for (size_t i = 0; i < dirty_.size(); ++i) {
      if (dirty_[i]) indices.push_back(static_cast<int>(i));
    }
  }
  std::fill(dirty_.begin(), dirty_.end(), 0);
  dirty_count_ = 0;
  all_dirty_ = false;
  return indices;
}

void AnchorDirtyTracker::EnsureNodeCapacity(int num_nodes) {
  if (static_cast<size_t>(num_nodes) > stamp_.size()) {
    stamp_.resize(static_cast<size_t>(num_nodes), 0);
    anchor_index_of_.resize(static_cast<size_t>(num_nodes), -1);
  }
}

}  // namespace grgad
