#include "src/sampling/group_sampler.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "src/graph/algorithms.h"
#include "src/graph/graphsnn.h"
#include "src/util/rng.h"

namespace grgad {

namespace {

/// Euclidean attribute distance between adjacent nodes.
double AttrDistance(const Graph& g, int u, int v) {
  const double* a = g.attributes().RowPtr(u);
  const double* b = g.attributes().RowPtr(v);
  double s = 0.0;
  for (size_t j = 0; j < g.attr_dim(); ++j) {
    const double d = a[j] - b[j];
    s += d * d;
  }
  return std::sqrt(s);
}

/// Reconstructs the parent-pointer path src -> dst (inclusive); empty when
/// dst unreachable.
std::vector<int> PathFromParents(const std::vector<int>& parent, int src,
                                 int dst) {
  if (parent[dst] == -1) return {};
  std::vector<int> path = {dst};
  for (int u = dst; u != src; u = parent[u]) {
    path.push_back(parent[u]);
    if (path.size() > parent.size()) return {};  // Corrupt parents guard.
  }
  std::reverse(path.begin(), path.end());
  return path;
}

}  // namespace

GroupSampler::GroupSampler(GroupSamplerOptions options) : options_(options) {}

std::vector<std::vector<int>> GroupSampler::Sample(
    const Graph& g, const std::vector<int>& anchors) const {
  std::vector<std::vector<int>> out;
  std::set<std::vector<int>> seen;  // Exact-duplicate filter.
  auto emit = [&](std::vector<int> group) {
    if (static_cast<int>(group.size()) < options_.min_group_size) return;
    if (static_cast<int>(group.size()) > options_.max_group_size) {
      group.resize(options_.max_group_size);
    }
    std::sort(group.begin(), group.end());
    group.erase(std::unique(group.begin(), group.end()), group.end());
    if (static_cast<int>(group.size()) < options_.min_group_size) return;
    if (seen.insert(group).second) out.push_back(std::move(group));
  };

  std::vector<uint8_t> is_anchor(g.num_nodes(), 0);
  for (int a : anchors) {
    GRGAD_CHECK(a >= 0 && a < g.num_nodes());
    is_anchor[a] = 1;
  }

  // GraphSNN edge costs, if requested (edge index order = g.Edges()).
  std::vector<double> snn_costs;
  if (options_.path_mode == PathSearchMode::kGraphSnnWeighted) {
    const std::vector<double> snn = GraphSnnEdgeWeights(g, /*lambda=*/1.0);
    snn_costs.resize(snn.size());
    for (size_t e = 0; e < snn.size(); ++e) {
      snn_costs[e] = 1.0 / (options_.graphsnn_cost_eps + snn[e]);
    }
  }
  const bool use_attr_paths =
      options_.path_mode == PathSearchMode::kAttributeDistance &&
      g.has_attributes();
  auto attr_cost = [&g, this](int u, int v) {
    return options_.attribute_cost_eps + AttrDistance(g, u, v);
  };

  for (int v : anchors) {
    // One BFS serves pair discovery (hop distances) for every µ; the
    // weighted parents come from a single Dijkstra per anchor.
    const BfsTree bfs = BuildBfsTree(g, v, options_.pair_radius);
    std::vector<double> wdist;
    std::vector<int> wparent;
    if (use_attr_paths) {
      Dijkstra(g, v, attr_cost, &wdist, &wparent);
    }
    // Nearby anchors, ordered by (weighted or hop) distance.
    std::vector<std::pair<double, int>> nearby;
    for (int mu : anchors) {
      if (mu == v || bfs.depth[mu] == kUnreachable) continue;
      const double d = use_attr_paths ? wdist[mu]
                                      : static_cast<double>(bfs.depth[mu]);
      nearby.emplace_back(d, mu);
    }
    std::sort(nearby.begin(), nearby.end());

    // --- Line 5: PathSearch(v, µ) for the nearest anchors. ---
    std::vector<int> tree_union;
    int fanout_used = 0;
    int paths_emitted = 0;
    for (const auto& [d, mu] : nearby) {
      if (paths_emitted >= options_.max_paths_per_anchor) break;
      std::vector<int> path;
      if (use_attr_paths) {
        path = PathFromParents(wparent, v, mu);
      } else if (options_.path_mode == PathSearchMode::kGraphSnnWeighted) {
        path = BellmanFordPath(g, v, mu, snn_costs);
      } else {
        path = PathFromParents(bfs.parent, v, mu);
      }
      if (path.empty() ||
          static_cast<int>(path.size()) > options_.max_group_size) {
        continue;
      }
      emit(path);
      ++paths_emitted;
      // --- Line 7: TreeSearch(v, µ): union of the paths to the nearest
      // anchors forms the hierarchical structure between them. ---
      if (fanout_used < options_.tree_fanout) {
        tree_union.insert(tree_union.end(), path.begin(), path.end());
        ++fanout_used;
        if (fanout_used >= 2) emit(tree_union);
      }
    }
    // --- Line 10: CycleSearch(v). ---
    const auto cycles = CyclesThrough(g, v, options_.cycle_max_len,
                                      options_.max_cycles_per_anchor,
                                      options_.cycle_max_steps);
    for (const auto& cycle : cycles) emit(cycle);
  }

  // --- Extension: bridged connected components of the anchor set. ---
  if (options_.include_anchor_components) {
    std::vector<int> expanded = anchors;
    for (int u = 0; u < g.num_nodes(); ++u) {
      if (is_anchor[u]) continue;
      int anchor_neighbors = 0;
      for (int w : g.Neighbors(u)) anchor_neighbors += is_anchor[w];
      if (anchor_neighbors >= 2) expanded.push_back(u);
    }
    std::sort(expanded.begin(), expanded.end());
    for (auto& component : ComponentsOfSubset(g, expanded)) {
      emit(std::move(component));
    }
  }

  // Seeded uniform subsample when over budget (keeps per-anchor diversity).
  if (options_.max_groups > 0 &&
      static_cast<int>(out.size()) > options_.max_groups) {
    Rng rng(options_.seed ^ 0x73616d70ULL);
    const auto keep = rng.SampleWithoutReplacement(
        out.size(), static_cast<size_t>(options_.max_groups));
    std::vector<size_t> order(keep.begin(), keep.end());
    std::sort(order.begin(), order.end());
    std::vector<std::vector<int>> sampled;
    sampled.reserve(order.size());
    for (size_t idx : order) sampled.push_back(std::move(out[idx]));
    out = std::move(sampled);
  }
  return out;
}

}  // namespace grgad
