#include "src/sampling/group_sampler.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <span>
#include <utility>

#include "src/graph/algorithms.h"
#include "src/graph/graphsnn.h"
#include "src/graph/traversal_workspace.h"
#include "src/util/fastpath.h"
#include "src/util/parallel.h"
#include "src/util/rng.h"
#include "src/util/timer.h"

namespace grgad {

namespace {

/// Euclidean attribute distance between adjacent nodes.
double AttrDistance(const Graph& g, int u, int v) {
  const double* a = g.attributes().RowPtr(u);
  const double* b = g.attributes().RowPtr(v);
  double s = 0.0;
  for (size_t j = 0; j < g.attr_dim(); ++j) {
    const double d = a[j] - b[j];
    s += d * d;
  }
  return std::sqrt(s);
}

/// Reconstructs the parent-pointer path src -> dst (inclusive); empty when
/// dst unreachable.
std::vector<int> PathFromParents(const std::vector<int>& parent, int src,
                                 int dst) {
  if (parent[dst] == -1) return {};
  std::vector<int> path = {dst};
  for (int u = dst; u != src; u = parent[u]) {
    path.push_back(parent[u]);
    if (path.size() > parent.size()) return {};  // Corrupt parents guard.
  }
  std::reverse(path.begin(), path.end());
  return path;
}

/// PathFromParents over a workspace's stamped parents (same guards).
std::vector<int> PathFromWorkspace(const TraversalWorkspace& ws, int src,
                                   int dst) {
  if (ws.Parent(dst) == -1) return {};
  std::vector<int> path = {dst};
  for (int u = dst; u != src; u = ws.Parent(u)) {
    path.push_back(ws.Parent(u));
    if (path.size() > static_cast<size_t>(ws.size())) return {};
  }
  std::reverse(path.begin(), path.end());
  return path;
}

/// The per-candidate normalization the seed's emit() applied before its
/// dedup check: truncate oversized raw groups (in emission order), sort,
/// drop repeats, and enforce the size bounds. True when the group survives.
bool NormalizeGroup(const GroupSamplerOptions& options,
                    std::vector<int>* group) {
  if (static_cast<int>(group->size()) < options.min_group_size) return false;
  if (static_cast<int>(group->size()) > options.max_group_size) {
    group->resize(options.max_group_size);
  }
  std::sort(group->begin(), group->end());
  group->erase(std::unique(group->begin(), group->end()), group->end());
  return static_cast<int>(group->size()) >= options.min_group_size;
}

/// Seeded uniform subsample when over budget (keeps per-anchor diversity).
void SubsampleIfOver(const GroupSamplerOptions& options,
                     std::vector<std::vector<int>>* out) {
  if (options.max_groups <= 0 ||
      static_cast<int>(out->size()) <= options.max_groups) {
    return;
  }
  Rng rng(options.seed ^ 0x73616d70ULL);
  const auto keep = rng.SampleWithoutReplacement(
      out->size(), static_cast<size_t>(options.max_groups));
  std::vector<size_t> order(keep.begin(), keep.end());
  std::sort(order.begin(), order.end());
  std::vector<std::vector<int>> sampled;
  sampled.reserve(order.size());
  for (size_t idx : order) sampled.push_back(std::move((*out)[idx]));
  *out = std::move(sampled);
}

/// GraphSNN path costs in g.Edges() index order (empty unless requested).
std::vector<double> SnnPathCosts(const Graph& g,
                                 const GroupSamplerOptions& options) {
  if (options.path_mode != PathSearchMode::kGraphSnnWeighted) return {};
  const std::vector<double> snn = GraphSnnEdgeWeights(g, /*lambda=*/1.0);
  std::vector<double> costs(snn.size());
  for (size_t e = 0; e < snn.size(); ++e) {
    costs[e] = 1.0 / (options.graphsnn_cost_eps + snn[e]);
  }
  return costs;
}

/// One anchor's search (fast path): BFS tree + one weighted search + cycle
/// DFS, all on the two leased workspaces, emitting normalized candidates in
/// exactly the seed's per-anchor order into `out`.
void SampleAnchor(const Graph& g, const GroupSamplerOptions& options,
                  const std::vector<int>& anchors, int anchor_index,
                  bool use_attr_paths, std::span<const double> slot_costs,
                  const std::vector<double>& snn_costs,
                  TraversalWorkspace* bfs_ws, TraversalWorkspace* alt_ws,
                  std::vector<std::vector<int>>* out) {
  const int v = anchors[anchor_index];
  auto emit = [&options, out](std::vector<int> group) {
    if (NormalizeGroup(options, &group)) out->push_back(std::move(group));
  };
  // One BFS serves pair discovery (hop distances) for every µ; the weighted
  // parents come from a single Dijkstra — or, in GraphSNN mode, a single
  // Bellman–Ford (the seed re-ran Bellman–Ford per anchor *pair*).
  BuildBfsTree(g, v, options.pair_radius, bfs_ws);
  bool weighted_ok = true;
  if (use_attr_paths) {
    Dijkstra(g, v, slot_costs, /*max_cost=*/0.0, alt_ws);
  } else if (options.path_mode == PathSearchMode::kGraphSnnWeighted) {
    weighted_ok = BellmanFord(g, v, snn_costs, alt_ws);
  }
  // Nearby anchors, ordered by (weighted or hop) distance.
  std::vector<std::pair<double, int>> nearby;
  for (int mu : anchors) {
    if (mu == v || bfs_ws->Hop(mu) == kUnreachable) continue;
    const double d = use_attr_paths
                         ? alt_ws->Dist(mu)
                         : static_cast<double>(bfs_ws->Hop(mu));
    nearby.emplace_back(d, mu);
  }
  std::sort(nearby.begin(), nearby.end());

  // --- Line 5: PathSearch(v, µ) for the nearest anchors. ---
  std::vector<int> tree_union;
  int fanout_used = 0;
  int paths_emitted = 0;
  for (const auto& [d, mu] : nearby) {
    if (paths_emitted >= options.max_paths_per_anchor) break;
    std::vector<int> path;
    if (use_attr_paths) {
      path = PathFromWorkspace(*alt_ws, v, mu);
    } else if (options.path_mode == PathSearchMode::kGraphSnnWeighted) {
      if (weighted_ok) path = PathFromWorkspace(*alt_ws, v, mu);
    } else {
      path = PathFromWorkspace(*bfs_ws, v, mu);
    }
    if (path.empty() ||
        static_cast<int>(path.size()) > options.max_group_size) {
      continue;
    }
    emit(path);
    ++paths_emitted;
    // --- Line 7: TreeSearch(v, µ): union of the paths to the nearest
    // anchors forms the hierarchical structure between them. ---
    if (fanout_used < options.tree_fanout) {
      tree_union.insert(tree_union.end(), path.begin(), path.end());
      ++fanout_used;
      if (fanout_used >= 2) emit(tree_union);
    }
  }
  // --- Line 10: CycleSearch(v). --- (The weighted results are consumed;
  // the cycle DFS may reuse that workspace.)
  for (const auto& cycle :
       CyclesThrough(g, v, options.cycle_max_len, options.max_cycles_per_anchor,
                     options.cycle_max_steps, alt_ws)) {
    emit(cycle);
  }
}

/// Open-addressed exact-duplicate filter over normalized candidate groups.
/// Replaces the merge's std::set: keys live in the output vector itself
/// (the table stores indices into it), so admitting N candidates costs N
/// hash probes plus the output pushes — no per-distinct-candidate tree-node
/// allocation, the last per-call red-black-tree growth on the hot path.
/// First-occurrence admit order is preserved, which is what the bitwise
/// seed==fast contract hangs on.
class FlatGroupSet {
 public:
  /// `expected` pre-sizes the table so a normal admit sequence never
  /// rehashes (capacity = next power of two above 2x expected).
  explicit FlatGroupSet(size_t expected) {
    size_t cap = 16;
    while (cap < 2 * (expected + 1)) cap <<= 1;
    slots_.assign(cap, kEmpty);
  }

  /// Appends `group` to `out` iff no equal group was admitted before.
  template <typename G>
  void Admit(G&& group, std::vector<std::vector<int>>* out) {
    if ((size_ + 1) * 10 >= slots_.size() * 7) Rehash(*out);
    const size_t mask = slots_.size() - 1;
    size_t i = Hash(group) & mask;
    while (slots_[i] != kEmpty) {
      if ((*out)[slots_[i]] == group) return;
      i = (i + 1) & mask;
    }
    slots_[i] = static_cast<uint32_t>(out->size());
    out->push_back(std::forward<G>(group));
    ++size_;
  }

 private:
  static constexpr uint32_t kEmpty = 0xffffffffu;

  /// FNV-1a over the group's node ids. Groups are sorted by normalization,
  /// so equal node sets hash (and compare) equal.
  static uint64_t Hash(const std::vector<int>& group) {
    uint64_t h = 14695981039346656037ULL;
    for (int v : group) {
      h ^= static_cast<uint64_t>(static_cast<uint32_t>(v));
      h *= 1099511628211ULL;
    }
    return h;
  }

  void Rehash(const std::vector<std::vector<int>>& out) {
    std::vector<uint32_t> old = std::move(slots_);
    slots_.assign(old.size() * 2, kEmpty);
    const size_t mask = slots_.size() - 1;
    for (uint32_t idx : old) {
      if (idx == kEmpty) continue;
      size_t i = Hash(out[idx]) & mask;
      while (slots_[i] != kEmpty) i = (i + 1) & mask;
      slots_[i] = idx;
    }
  }

  std::vector<uint32_t> slots_;  ///< Index-into-out slots; kEmpty = vacant.
  size_t size_ = 0;
};

/// The sampler's weighted-search workspace pool: these instances carry the
/// worst-case Dijkstra-heap reserve, so they are kept apart from the
/// shared Global() pool whose BFS-only users never need it.
TraversalWorkspacePool& WeightedPool() {
  static TraversalWorkspacePool* pool = new TraversalWorkspacePool();
  return *pool;
}

}  // namespace

GroupSampler::GroupSampler(GroupSamplerOptions options) : options_(options) {}

void GroupSampler::TrimWorkspaces() {
  TraversalWorkspacePool::Global().Trim();
  WeightedPool().Trim();
}

void GroupSampler::PrewarmWorkspaces(const Graph& g,
                                     const GroupSamplerOptions& options,
                                     int count) {
  // Mirror SampleFast's own Prewarm calls exactly: the BFS pool needs
  // n-sized buffers, the weighted pool additionally the worst-case Dijkstra
  // heap reserve when attribute-distance path search is in effect.
  const int instances = std::max(count, ParallelismDegree());
  const bool use_attr_paths =
      options.path_mode == PathSearchMode::kAttributeDistance &&
      g.has_attributes();
  TraversalWorkspacePool::Global().Prewarm(instances, g.num_nodes());
  WeightedPool().Prewarm(
      instances, g.num_nodes(),
      use_attr_paths ? static_cast<size_t>(g.num_adj_slots()) + 1 : 0);
}

std::vector<std::vector<int>> GroupSampler::Sample(
    const Graph& g, const std::vector<int>& anchors) const {
  return Sample(g, anchors, nullptr);
}

std::vector<std::vector<int>> GroupSampler::Sample(
    const Graph& g, const std::vector<int>& anchors,
    SampleTelemetry* telemetry) const {
  return CandidateFastPathEnabled() ? SampleFast(g, anchors, telemetry)
                                    : SampleSeed(g, anchors, telemetry);
}

std::vector<std::vector<int>> GroupSampler::SampleFast(
    const Graph& g, const std::vector<int>& anchors,
    SampleTelemetry* telemetry) const {
  // The fast path IS resample-everything + finalize: the incremental
  // refresh path reuses the exact same two stages with a smaller index set,
  // which is why its merged output can be bitwise identical to this one.
  std::vector<int> all(anchors.size());
  std::iota(all.begin(), all.end(), 0);
  std::vector<std::vector<std::vector<int>>> per_anchor;
  ResampleAnchors(g, anchors, all, &per_anchor, telemetry);
  return FinalizeCandidates(g, anchors, per_anchor, telemetry);
}

void GroupSampler::ResampleAnchors(
    const Graph& g, const std::vector<int>& anchors,
    const std::vector<int>& anchor_indices,
    std::vector<std::vector<std::vector<int>>>* per_anchor,
    SampleTelemetry* telemetry) const {
  Timer phase_timer;
  for (int a : anchors) GRGAD_CHECK(a >= 0 && a < g.num_nodes());
  for (int idx : anchor_indices) {
    GRGAD_CHECK(idx >= 0 && idx < static_cast<int>(anchors.size()));
  }
  per_anchor->resize(anchors.size());

  const std::vector<double> snn_costs = SnnPathCosts(g, options_);
  const bool use_attr_paths =
      options_.path_mode == PathSearchMode::kAttributeDistance &&
      g.has_attributes();
  // Per-adjacency-slot Dijkstra costs, computed ONCE per call: the seed
  // re-evaluated the eps + ||x_u - x_v|| functor (a d-dim norm) on every
  // relaxation attempt of every anchor's Dijkstra. Slot (u, i) holds the
  // exact value the seed would compute relaxing u -> Neighbors(u)[i].
  std::vector<double> slot_costs;
  if (use_attr_paths) {
    slot_costs.resize(g.num_adj_slots());
    ParallelFor(static_cast<size_t>(g.num_nodes()), 64,
                [&](size_t begin, size_t end) {
                  for (size_t u = begin; u < end; ++u) {
                    auto nb = g.Neighbors(static_cast<int>(u));
                    double* costs =
                        slot_costs.data() + g.AdjOffset(static_cast<int>(u));
                    for (size_t i = 0; i < nb.size(); ++i) {
                      costs[i] = options_.attribute_cost_eps +
                                 AttrDistance(g, static_cast<int>(u), nb[i]);
                    }
                  }
                });
  }

  // --- candidates/search: anchors fan out over the persistent pool with
  // leased per-worker workspaces (two per chunk: BFS + weighted/cycles).
  // The two roles lease from separate pools so only the weighted pool pays
  // the worst-case Dijkstra-heap reserve (~2E entries; the bound keeps the
  // steady state allocation-free no matter which worker leases which
  // workspace, and BFS-only workspaces never carry it). Chunk partitioning
  // never changes per-anchor results, so the merge below is bitwise
  // identical at any GRGAD_THREADS. ---
  TraversalWorkspacePool& bfs_pool = TraversalWorkspacePool::Global();
  TraversalWorkspacePool& weighted_pool = WeightedPool();
  bfs_pool.Prewarm(ParallelismDegree(), g.num_nodes());
  weighted_pool.Prewarm(
      ParallelismDegree(), g.num_nodes(),
      use_attr_paths ? static_cast<size_t>(g.num_adj_slots()) + 1 : 0);
  ParallelFor(anchor_indices.size(), 1, [&](size_t begin, size_t end) {
    TraversalWorkspacePool::Lease bfs_ws = bfs_pool.Acquire();
    TraversalWorkspacePool::Lease alt_ws = weighted_pool.Acquire();
    for (size_t i = begin; i < end; ++i) {
      // Stop poll per anchor: a fired token (deadline, cancel) abandons the
      // remaining chunk; the caller sees stop_requested() and discards the
      // partial result, so skipped anchors never surface.
      if (options_.cancel.stop_requested()) return;
      const int ai = anchor_indices[i];
      std::vector<std::vector<int>>& list = (*per_anchor)[ai];
      list.clear();
      SampleAnchor(g, options_, anchors, ai, use_attr_paths, slot_costs,
                   snn_costs, bfs_ws.get(), alt_ws.get(), &list);
    }
  });
  if (telemetry != nullptr) {
    telemetry->search_seconds = phase_timer.ElapsedSeconds();
  }
}

std::vector<std::vector<int>> GroupSampler::FinalizeCandidates(
    const Graph& g, const std::vector<int>& anchors,
    const std::vector<std::vector<std::vector<int>>>& per_anchor,
    SampleTelemetry* telemetry) const {
  Timer phase_timer;
  GRGAD_CHECK_EQ(per_anchor.size(), anchors.size());

  // --- candidates/components: bridged connected components of the anchor
  // set (extension), workspace-backed. ---
  std::vector<std::vector<int>> component_groups;
  if (options_.include_anchor_components) {
    std::vector<uint8_t> is_anchor(g.num_nodes(), 0);
    for (int a : anchors) is_anchor[a] = 1;
    std::vector<int> expanded = anchors;
    for (int u = 0; u < g.num_nodes(); ++u) {
      if (is_anchor[u]) continue;
      int anchor_neighbors = 0;
      for (int w : g.Neighbors(u)) anchor_neighbors += is_anchor[w];
      if (anchor_neighbors >= 2) expanded.push_back(u);
    }
    std::sort(expanded.begin(), expanded.end());
    TraversalWorkspacePool::Lease ws =
        TraversalWorkspacePool::Global().Acquire();
    for (auto& component : ComponentsOfSubset(g, expanded, ws.get())) {
      if (NormalizeGroup(options_, &component)) {
        component_groups.push_back(std::move(component));
      }
    }
  }
  if (telemetry != nullptr) {
    telemetry->components_seconds = phase_timer.ElapsedSeconds();
    phase_timer.Reset();
  }

  // --- candidates/select: deterministic ascending-anchor merge. Replaying
  // the per-anchor candidate lists in anchor order through the global dedup
  // reproduces the seed's single-threaded emission stream bit for bit. The
  // per-anchor lists are copied in, never consumed: the refresh path keeps
  // them cached and replays this merge after every delta. ---
  size_t total = component_groups.size();
  for (const auto& list : per_anchor) total += list.size();
  std::vector<std::vector<int>> out;
  // Pre-reserve from the exact pre-dedup candidate count (dedup only
  // shrinks), instead of growing through repeated reallocation.
  out.reserve(total);
  FlatGroupSet seen(total);
  for (const auto& list : per_anchor) {
    for (const auto& group : list) seen.Admit(group, &out);
  }
  for (auto& group : component_groups) seen.Admit(std::move(group), &out);
  SubsampleIfOver(options_, &out);
  if (telemetry != nullptr) {
    telemetry->select_seconds = phase_timer.ElapsedSeconds();
  }
  return out;
}

std::vector<std::vector<int>> GroupSampler::SampleSeed(
    const Graph& g, const std::vector<int>& anchors,
    SampleTelemetry* telemetry) const {
  Timer phase_timer;
  std::vector<std::vector<int>> out;
  FlatGroupSet seen(/*expected=*/64);  // Exact-duplicate filter; grows.
  // Same normalization helper + dedup structure as the fast path — the
  // bitwise seed==fast contract hangs on the two paths sharing them.
  auto emit = [&](std::vector<int> group) {
    if (NormalizeGroup(options_, &group)) seen.Admit(std::move(group), &out);
  };

  std::vector<uint8_t> is_anchor(g.num_nodes(), 0);
  for (int a : anchors) {
    GRGAD_CHECK(a >= 0 && a < g.num_nodes());
    is_anchor[a] = 1;
  }

  const std::vector<double> snn_costs = SnnPathCosts(g, options_);
  const bool use_attr_paths =
      options_.path_mode == PathSearchMode::kAttributeDistance &&
      g.has_attributes();
  auto attr_cost = [&g, this](int u, int v) {
    return options_.attribute_cost_eps + AttrDistance(g, u, v);
  };

  for (int v : anchors) {
    // Stop poll per anchor (see SampleFast): partial output is discarded by
    // the caller once it observes the fired token.
    if (options_.cancel.stop_requested()) break;
    // One BFS serves pair discovery (hop distances) for every µ; the
    // weighted parents come from a single Dijkstra per anchor.
    const BfsTree bfs = BuildBfsTree(g, v, options_.pair_radius);
    std::vector<double> wdist;
    std::vector<int> wparent;
    if (use_attr_paths) {
      Dijkstra(g, v, attr_cost, &wdist, &wparent);
    }
    // Nearby anchors, ordered by (weighted or hop) distance.
    std::vector<std::pair<double, int>> nearby;
    for (int mu : anchors) {
      if (mu == v || bfs.depth[mu] == kUnreachable) continue;
      const double d = use_attr_paths ? wdist[mu]
                                      : static_cast<double>(bfs.depth[mu]);
      nearby.emplace_back(d, mu);
    }
    std::sort(nearby.begin(), nearby.end());

    // --- Line 5: PathSearch(v, µ) for the nearest anchors. ---
    std::vector<int> tree_union;
    int fanout_used = 0;
    int paths_emitted = 0;
    for (const auto& [d, mu] : nearby) {
      if (paths_emitted >= options_.max_paths_per_anchor) break;
      std::vector<int> path;
      if (use_attr_paths) {
        path = PathFromParents(wparent, v, mu);
      } else if (options_.path_mode == PathSearchMode::kGraphSnnWeighted) {
        path = BellmanFordPath(g, v, mu, snn_costs);
      } else {
        path = PathFromParents(bfs.parent, v, mu);
      }
      if (path.empty() ||
          static_cast<int>(path.size()) > options_.max_group_size) {
        continue;
      }
      emit(path);
      ++paths_emitted;
      // --- Line 7: TreeSearch(v, µ): union of the paths to the nearest
      // anchors forms the hierarchical structure between them. ---
      if (fanout_used < options_.tree_fanout) {
        tree_union.insert(tree_union.end(), path.begin(), path.end());
        ++fanout_used;
        if (fanout_used >= 2) emit(tree_union);
      }
    }
    // --- Line 10: CycleSearch(v). ---
    const auto cycles = CyclesThrough(g, v, options_.cycle_max_len,
                                      options_.max_cycles_per_anchor,
                                      options_.cycle_max_steps);
    for (const auto& cycle : cycles) emit(cycle);
  }
  if (telemetry != nullptr) {
    telemetry->search_seconds = phase_timer.ElapsedSeconds();
    phase_timer.Reset();
  }

  // --- Extension: bridged connected components of the anchor set. ---
  if (options_.include_anchor_components) {
    std::vector<int> expanded = anchors;
    for (int u = 0; u < g.num_nodes(); ++u) {
      if (is_anchor[u]) continue;
      int anchor_neighbors = 0;
      for (int w : g.Neighbors(u)) anchor_neighbors += is_anchor[w];
      if (anchor_neighbors >= 2) expanded.push_back(u);
    }
    std::sort(expanded.begin(), expanded.end());
    for (auto& component : ComponentsOfSubset(g, expanded)) {
      emit(std::move(component));
    }
  }
  if (telemetry != nullptr) {
    telemetry->components_seconds = phase_timer.ElapsedSeconds();
    phase_timer.Reset();
  }

  SubsampleIfOver(options_, &out);
  if (telemetry != nullptr) {
    telemetry->select_seconds = phase_timer.ElapsedSeconds();
  }
  return out;
}

}  // namespace grgad
