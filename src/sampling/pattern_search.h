// Topology-pattern search inside a candidate group (Alg. 2 line 4) and
// whole-group pattern classification (Table II).
//
// Patterns are found on the group's induced subgraph and reported in local
// node ids: cycles via bounded enumeration, paths as maximal endpoint-to-
// endpoint simple chains, trees as BFS trees hanging from branching roots
// in the acyclic remainder.
//
// Both entry points run on a materialized `Graph` (the seed shape) or on a
// non-materializing `SubgraphView` (the candidate fast path) — the two
// produce identical patterns, since a view exposes the exact local graph
// its materialization would (tests/traversal_equivalence_test.cc).
#ifndef GRGAD_SAMPLING_PATTERN_SEARCH_H_
#define GRGAD_SAMPLING_PATTERN_SEARCH_H_

#include <vector>

#include "src/core/types.h"
#include "src/graph/graph.h"
#include "src/graph/subgraph_view.h"

namespace grgad {

/// Patterns found inside one candidate group (local node ids).
struct FoundPatterns {
  /// Each tree is a node list with the root first, then BFS order.
  std::vector<std::vector<int>> trees;
  /// Each path is an ordered node sequence (>= 3 nodes).
  std::vector<std::vector<int>> paths;
  /// Each cycle is an ordered ring (>= 3 nodes).
  std::vector<std::vector<int>> cycles;

  bool empty() const { return trees.empty() && paths.empty() &&
                              cycles.empty(); }
};

/// Pattern-search knobs. The pattern taxonomy is disjoint: a chain counts
/// only as a path (its nodes are never tree roots), and a path must have
/// degree-2 interiors (a leaf-to-leaf walk through a branching node is not
/// a path pattern — the branching node anchors a tree pattern instead).
struct PatternSearchOptions {
  int cycle_max_len = 12;
  int max_cycles = 8;
  int max_paths = 8;
  int max_trees = 4;
  /// Minimum degree of a tree-pattern root (>= 3 keeps chains out).
  int min_tree_children = 3;
};

/// Finds Tree/Path/Cycle patterns in the (small) graph `group_graph`.
FoundPatterns SearchPatterns(const Graph& group_graph,
                             const PatternSearchOptions& options = {});
/// Same patterns, straight off a subgraph view (no materialization).
FoundPatterns SearchPatterns(const SubgraphView& group_view,
                             const PatternSearchOptions& options = {});

/// Classifies a group's dominant topology pattern (Table II):
///  - acyclic + max degree <= 2          -> kPath
///  - acyclic + branching                -> kTree
///  - cyclic and >= half the nodes lie on cycles -> kCycle
///  - otherwise                          -> kMixed
TopologyPattern ClassifyGroupPattern(const Graph& group_graph);
TopologyPattern ClassifyGroupPattern(const SubgraphView& group_view);

}  // namespace grgad

#endif  // GRGAD_SAMPLING_PATTERN_SEARCH_H_
