// Dirty-region tracking for incremental candidate refresh.
//
// The locality argument (ARISE's substructure view, NK-GAD's local
// neighborhood updates): with hop-count path search, one anchor's candidate
// groups are a function of the adjacency rows within a bounded hop radius
// of the anchor — the BFS tree stops at pair_radius, and the cycle DFS
// walks simple paths of at most cycle_max_len edges. An edge mutation
// {u, v} only rewrites the adjacency rows of u and v, so the only anchors
// whose candidates can change are those with u or v inside their radius-R
// ball, R = max(pair_radius, cycle_max_len) — one hop conservative, never
// unsound. The tracker marks those anchors dirty with an epoch-stamped
// multi-source BFS (the traversal-workspace trick: no per-mutation
// clearing), and the refresh stage re-samples exactly the marked set.
//
// Mark on the right side of the mutation: additions mark AFTER applying
// (distances only shrink, so the post-mutation ball covers the pre-mutation
// one through the new edge); removals mark BEFORE applying (distances only
// grow once the edge is gone).
//
// Weighted path modes (kAttributeDistance, kGraphSnnWeighted) are NOT
// radius-local — Dijkstra/Bellman–Ford distances and GraphSNN weights read
// unboundedly far — so IncrementalInvalidationSound() is false for them and
// callers must MarkAll() (a full refresh: slower, still exact).
#ifndef GRGAD_SAMPLING_DIRTY_TRACKER_H_
#define GRGAD_SAMPLING_DIRTY_TRACKER_H_

#include <cstdint>
#include <vector>

#include "src/sampling/group_sampler.h"

namespace grgad {

/// True when per-anchor candidate output is a radius-local function of the
/// graph, i.e. ball-based invalidation is exact. Only hop-count path search
/// qualifies; the weighted modes must fall back to MarkAll().
bool IncrementalInvalidationSound(const GroupSamplerOptions& options);

/// The hop radius bounding what one anchor's candidates can read:
/// max(pair_radius, cycle_max_len).
int InvalidationRadius(const GroupSamplerOptions& options);

/// Epoch-stamped dirty set over a fixed anchor list. Not thread-safe; owned
/// by the serving daemon's single executor thread next to the DynamicGraph.
class AnchorDirtyTracker {
 public:
  /// (Re)binds the tracker to an anchor list over a graph of `num_nodes`
  /// nodes, clearing all marks. `radius` from InvalidationRadius().
  void Reset(const std::vector<int>& anchors, int radius, int num_nodes);

  /// Marks every anchor whose radius ball contains u or v (multi-source BFS
  /// from both endpoints on `g` — the post-add or pre-remove graph, see the
  /// header comment). Returns the invalidation fanout: the number of
  /// anchors inside the ball, whether or not they were already dirty.
  template <typename G>
  int MarkFromEdge(const G& g, int u, int v) {
    return MarkBall(g, u, v);
  }

  /// MarkFromEdge for node-scoped mutations (RemoveNode detaches every
  /// incident edge): one ball around v, called before detaching.
  template <typename G>
  int MarkFromNode(const G& g, int v) {
    return MarkBall(g, v, -1);
  }

  /// Marks every anchor dirty (the weighted-mode fallback, and the recovery
  /// path after an aborted refresh).
  void MarkAll();

  bool all_dirty() const { return all_dirty_; }
  size_t dirty_count() const { return dirty_count_; }
  size_t num_anchors() const { return dirty_.size(); }

  /// Marks one anchor by its index into the Reset() anchor list (snapshot
  /// restore: re-arming marks recorded by PeekDirtyIndices). Out-of-range
  /// indices are ignored.
  void MarkIndex(int anchor_index);

  /// Returns the dirty anchor indices (ascending, into the Reset() anchor
  /// list) and clears every mark.
  std::vector<int> TakeDirtyIndices();

  /// TakeDirtyIndices without the clear — the serializable view of the
  /// current dirty set for snapshots.
  std::vector<int> PeekDirtyIndices() const;

 private:
  template <typename G>
  int MarkBall(const G& g, int a, int b) {
    EnsureNodeCapacity(g.num_nodes());
    if (++epoch_ == 0) {  // Stamp wrap: invalidate all stamps once.
      std::fill(stamp_.begin(), stamp_.end(), 0);
      epoch_ = 1;
    }
    int fanout = 0;
    queue_.clear();
    depths_.clear();
    auto visit = [&](int node, int d) {
      if (node < 0 || node >= g.num_nodes() || stamp_[node] == epoch_) return;
      stamp_[node] = epoch_;
      queue_.push_back(node);
      depths_.push_back(d);
      const int ai = anchor_index_of_[node];
      if (ai >= 0) {
        ++fanout;
        if (!dirty_[ai]) {
          dirty_[ai] = 1;
          ++dirty_count_;
        }
      }
    };
    visit(a, 0);
    visit(b, 0);
    for (size_t head = 0; head < queue_.size(); ++head) {
      const int node = queue_[head];
      const int d = depths_[head];
      if (d == radius_) continue;
      for (int w : g.Neighbors(node)) visit(w, d + 1);
    }
    return fanout;
  }

  /// Grows the per-node buffers when the graph gained nodes since Reset()
  /// (new nodes are never anchors, but BFS traverses them).
  void EnsureNodeCapacity(int num_nodes);

  int radius_ = 0;
  bool all_dirty_ = false;
  size_t dirty_count_ = 0;
  std::vector<uint8_t> dirty_;        ///< Per anchor index.
  std::vector<int> anchor_index_of_;  ///< Per node; -1 = not an anchor.
  std::vector<uint32_t> stamp_;       ///< Per-node BFS visit epoch.
  std::vector<int> queue_;            ///< BFS frontier (node ids).
  std::vector<int> depths_;           ///< Depth of queue_[i].
  uint32_t epoch_ = 0;
};

}  // namespace grgad

#endif  // GRGAD_SAMPLING_DIRTY_TRACKER_H_
