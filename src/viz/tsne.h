// Exact t-SNE (van der Maaten & Hinton, 2008) for the Fig. 7 embedding
// visualizations. O(n^2) per iteration — appropriate for the few hundred
// candidate-group embeddings the paper plots.
#ifndef GRGAD_VIZ_TSNE_H_
#define GRGAD_VIZ_TSNE_H_

#include "src/tensor/matrix.h"

namespace grgad {

/// t-SNE hyperparameters (defaults follow the reference implementation).
struct TsneOptions {
  int out_dim = 2;
  double perplexity = 20.0;  ///< Clamped to (n-1)/3.
  int iterations = 400;
  /// Conservative default; this exact-gradient implementation (no gain
  /// warm-up from a 1e-4-scale init) diverges above ~50 on small inputs.
  double learning_rate = 10.0;
  double early_exaggeration = 4.0;
  int exaggeration_iters = 80;
  double momentum_initial = 0.5;
  double momentum_final = 0.8;
  int momentum_switch_iter = 120;
  uint64_t seed = 11;
};

/// Embeds the rows of `x` into out_dim dimensions.
Matrix Tsne(const Matrix& x, const TsneOptions& options = {});

/// Mean silhouette-style separation of a binary labeling of embedded points
/// (mean over points of (b - a) / max(a, b) with centroid distances);
/// in [-1, 1], higher = better separated. Used to assert Fig. 7's clustering
/// quality without eyeballing a plot.
double BinarySeparationScore(const Matrix& embedded,
                             const std::vector<int>& labels);

}  // namespace grgad

#endif  // GRGAD_VIZ_TSNE_H_
