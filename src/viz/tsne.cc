#include "src/viz/tsne.h"

#include <algorithm>
#include <cmath>

#include "src/util/check.h"
#include "src/util/rng.h"

namespace grgad {

namespace {

/// Row-conditional probabilities with the sigma that hits the target
/// perplexity (binary search on precision beta = 1 / (2 sigma^2)).
void RowAffinities(const std::vector<double>& sq_dist, size_t self,
                   double perplexity, std::vector<double>* p_row) {
  const size_t n = sq_dist.size();
  const double log_perp = std::log(perplexity);
  double beta = 1.0, beta_lo = 0.0, beta_hi = HUGE_VAL;
  for (int iter = 0; iter < 64; ++iter) {
    double sum_p = 0.0, sum_dp = 0.0;
    for (size_t j = 0; j < n; ++j) {
      if (j == self) {
        (*p_row)[j] = 0.0;
        continue;
      }
      const double pj = std::exp(-beta * sq_dist[j]);
      (*p_row)[j] = pj;
      sum_p += pj;
      sum_dp += beta * sq_dist[j] * pj;
    }
    if (sum_p <= 0.0) {
      beta /= 2.0;
      continue;
    }
    const double entropy = std::log(sum_p) + sum_dp / sum_p;
    const double diff = entropy - log_perp;
    if (std::fabs(diff) < 1e-5) break;
    if (diff > 0) {  // Entropy too high -> sharpen.
      beta_lo = beta;
      beta = beta_hi == HUGE_VAL ? beta * 2.0 : 0.5 * (beta + beta_hi);
    } else {
      beta_hi = beta;
      beta = 0.5 * (beta + beta_lo);
    }
  }
  double sum_p = 0.0;
  for (double v : *p_row) sum_p += v;
  if (sum_p > 0.0) {
    for (double& v : *p_row) v /= sum_p;
  }
}

}  // namespace

Matrix Tsne(const Matrix& x, const TsneOptions& options) {
  const size_t n = x.rows();
  GRGAD_CHECK_GE(n, 4u);
  const double perplexity =
      std::min(options.perplexity, static_cast<double>(n - 1) / 3.0);

  // Pairwise squared distances in input space.
  Matrix sq(n, n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      double s = 0.0;
      const double* a = x.RowPtr(i);
      const double* b = x.RowPtr(j);
      for (size_t k = 0; k < x.cols(); ++k) {
        const double d = a[k] - b[k];
        s += d * d;
      }
      sq(i, j) = s;
      sq(j, i) = s;
    }
  }
  // Symmetrized joint probabilities P.
  Matrix p(n, n);
  std::vector<double> row(n), p_row(n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) row[j] = sq(i, j);
    RowAffinities(row, i, perplexity, &p_row);
    for (size_t j = 0; j < n; ++j) p(i, j) = p_row[j];
  }
  const double inv_2n = 1.0 / (2.0 * static_cast<double>(n));
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      const double v = std::max((p(i, j) + p(j, i)) * inv_2n, 1e-12);
      p(i, j) = v;
      p(j, i) = v;
    }
    p(i, i) = 0.0;
  }

  // Gradient descent on the KL divergence.
  Rng rng(options.seed);
  const int dim = options.out_dim;
  Matrix y = Matrix::Gaussian(n, dim, &rng, 0.0, 1e-2);
  Matrix velocity(n, dim);
  Matrix gains(n, dim, 1.0);  // Per-parameter adaptive gains (reference impl).
  Matrix q(n, n);
  for (int iter = 0; iter < options.iterations; ++iter) {
    const double exaggeration =
        iter < options.exaggeration_iters ? options.early_exaggeration : 1.0;
    // Student-t affinities Q (unnormalized in `q`, normalizer in sum_q).
    double sum_q = 0.0;
    for (size_t i = 0; i < n; ++i) {
      q(i, i) = 0.0;
      for (size_t j = i + 1; j < n; ++j) {
        double s = 0.0;
        for (int k = 0; k < dim; ++k) {
          const double d = y(i, k) - y(j, k);
          s += d * d;
        }
        const double t = 1.0 / (1.0 + s);
        q(i, j) = t;
        q(j, i) = t;
        sum_q += 2.0 * t;
      }
    }
    sum_q = std::max(sum_q, 1e-12);
    const double momentum = iter < options.momentum_switch_iter
                                ? options.momentum_initial
                                : options.momentum_final;
    for (size_t i = 0; i < n; ++i) {
      double grad[8] = {0};  // out_dim <= 8 is plenty.
      GRGAD_CHECK_LE(dim, 8);
      for (size_t j = 0; j < n; ++j) {
        if (j == i) continue;
        const double q_ij = q(i, j) / sum_q;
        const double coeff =
            4.0 * (exaggeration * p(i, j) - q_ij) * q(i, j);
        for (int k = 0; k < dim; ++k) {
          grad[k] += coeff * (y(i, k) - y(j, k));
        }
      }
      for (int k = 0; k < dim; ++k) {
        // Gain schedule: grow when the gradient keeps pushing against the
        // velocity, shrink when it agrees (van der Maaten's update rule);
        // this is what keeps the optimization from diverging.
        const bool same_sign = (grad[k] > 0) == (velocity(i, k) > 0);
        gains(i, k) = same_sign ? std::max(gains(i, k) * 0.8, 0.01)
                                : gains(i, k) + 0.2;
        velocity(i, k) = momentum * velocity(i, k) -
                         options.learning_rate * gains(i, k) * grad[k];
        y(i, k) += velocity(i, k);
      }
    }
    // Re-center.
    const std::vector<double> center = y.ColMeans();
    for (size_t i = 0; i < n; ++i) {
      for (int k = 0; k < dim; ++k) y(i, k) -= center[k];
    }
  }
  return y;
}

double BinarySeparationScore(const Matrix& embedded,
                             const std::vector<int>& labels) {
  GRGAD_CHECK_EQ(labels.size(), embedded.rows());
  const size_t n = embedded.rows();
  const size_t dim = embedded.cols();
  // Class centroids.
  std::vector<double> c0(dim, 0.0), c1(dim, 0.0);
  size_t n0 = 0, n1 = 0;
  for (size_t i = 0; i < n; ++i) {
    const double* row = embedded.RowPtr(i);
    if (labels[i] == 1) {
      ++n1;
      for (size_t k = 0; k < dim; ++k) c1[k] += row[k];
    } else {
      ++n0;
      for (size_t k = 0; k < dim; ++k) c0[k] += row[k];
    }
  }
  if (n0 == 0 || n1 == 0) return 0.0;
  for (size_t k = 0; k < dim; ++k) {
    c0[k] /= static_cast<double>(n0);
    c1[k] /= static_cast<double>(n1);
  }
  auto dist_to = [&](const double* row, const std::vector<double>& c) {
    double s = 0.0;
    for (size_t k = 0; k < dim; ++k) {
      const double d = row[k] - c[k];
      s += d * d;
    }
    return std::sqrt(s);
  };
  double total = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double* row = embedded.RowPtr(i);
    const double a = dist_to(row, labels[i] == 1 ? c1 : c0);
    const double b = dist_to(row, labels[i] == 1 ? c0 : c1);
    total += (b - a) / std::max({a, b, 1e-12});
  }
  return total / static_cast<double>(n);
}

}  // namespace grgad
