// grgad — the serving-facing command-line front door.
//
//   grgad list
//       Datasets, methods (with their option keys), and detectors.
//   grgad run --dataset=simml --method=tp-grgad --detector=ecod
//             --set tpgcl.epochs=30 --out artifacts/ [--json results.json]
//       Builds the dataset and method by name, runs the pipeline with a
//       RunContext (Ctrl-C cancels cooperatively; per-stage wall times are
//       reported), evaluates against ground truth, writes a JSON result,
//       and persists every pipeline artifact under --out.
//   grgad rescore --in artifacts/ --detector=ensemble [--out artifacts2/]
//       Reloads saved artifacts and re-runs ONLY the scoring stage with a
//       different outlier detector — no re-training.
//   grgad serve --dataset=example [--in artifacts/] [--socket PATH]
//               [--state-dir state/]
//       Resident daemon: loads the dataset (and artifacts, or trains them)
//       once, then answers newline-delimited JSON requests — anchor-score /
//       rescore / what-if / stats / shutdown, plus the live-mutation ops
//       add-edge / remove-edge / refresh / compact / sync / snapshot — over
//       a unix socket or stdin/stdout, batching queued requests per tick.
//       --state-dir adds durability: applied mutations hit a checksummed
//       WAL before the ack, snapshots truncate it, and a restart (clean or
//       kill -9) recovers to the exact acked state. SIGTERM drains
//       in-flight requests and exits 0.
//   grgad query --socket PATH 'JSON' ['JSON' ...]
//       One-shot client for the daemon (retries the connect until the
//       daemon accepts or the window expires — exit 124 — then writes the
//       request lines and prints one response line each).
//
// All configuration is string-keyed through the method registry, so this
// binary needs no per-method flag wiring.
#include <algorithm>
#include <cmath>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include <unistd.h>

#include "src/core/artifacts.h"
#include "src/core/evaluation.h"
#include "src/core/method_registry.h"
#include "src/core/pipeline.h"
#include "src/core/stages.h"
#include "src/data/registry.h"
#include "src/od/detector.h"
#include "src/serve/server.h"
#include "src/serve/wal.h"
#include "src/util/fault.h"
#include "src/util/parallel.h"
#include "src/util/retry.h"
#include "src/util/timer.h"
#include "src/util/transport.h"

namespace grgad {
namespace {

// ---- SIGINT/SIGTERM -> cooperative cancellation -----------------------------

// The token outlives any run; the handler only flips an atomic.
CancelToken* GlobalCancelToken() {
  static CancelToken token;
  return &token;
}

void HandleStopSignal(int) { GlobalCancelToken()->RequestCancel(); }

/// Installs (or restores) the cooperative stop handler for both SIGINT and
/// SIGTERM — a supervisor's TERM should unwind exactly like Ctrl-C.
void HookStopSignals(bool install) {
  std::signal(SIGINT, install ? HandleStopSignal : SIG_DFL);
  std::signal(SIGTERM, install ? HandleStopSignal : SIG_DFL);
}

// ---- tiny JSON writer -------------------------------------------------------

std::string JsonEscape(const std::string& s) {
  std::string out;
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string JsonNumber(double v) {
  if (!std::isfinite(v)) return "null";  // Bare nan/inf is invalid JSON.
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.12g", v);
  return buf;
}

/// Appends one `"key": value` JSON member (value pre-rendered).
void JsonField(std::string* out, const char* key, const std::string& value,
               bool* first) {
  if (!*first) *out += ", ";
  *first = false;
  *out += "\"";
  *out += key;
  *out += "\": ";
  *out += value;
}

std::string JsonString(const std::string& s) {
  return "\"" + JsonEscape(s) + "\"";
}

// ---- argument parsing -------------------------------------------------------

struct Args {
  std::string command;
  std::string dataset;
  std::string method = "tp-grgad";
  std::string detector;
  std::string out_dir;
  std::string in_dir;
  std::string json_path;
  uint64_t seed = 42;
  bool seed_set = false;  // Rescore defaults to the artifacts' seed.
  uint64_t data_seed = 42;
  double scale = 1.0;
  int attr_dim = 0;
  int threads = 0;  // 0 = GRGAD_THREADS / hardware default.
  double timeout = 0.0;  // Seconds; 0 = no deadline.
  std::string inject;    // Fault-injection spec (same syntax as GRGAD_FAULTS).
  bool quiet = false;
  bool profile = false;
  std::vector<std::string> overrides;
  // serve / query:
  std::string socket_path;         // Unix socket; serve defaults to stdio.
  int max_queue = 64;              // serve: admission-queue bound.
  std::string metrics_out;         // serve: metrics JSON dump at exit.
  std::string state_dir;           // serve: durable state (WAL + snapshots).
  double wait = 15.0;              // query: daemon connect window (seconds).
  std::vector<std::string> requests;  // query: positional request lines.
};

/// Matches "--name=value" or "--name value" (value from the next argv slot,
/// advancing *i). Returns false when `arg` is a different flag.
bool ParseFlag(int argc, char** argv, int* i, const char* name,
               std::string* value) {
  const std::string arg = argv[*i];
  const std::string flag = std::string("--") + name;
  if (arg.rfind(flag + "=", 0) == 0) {
    *value = arg.substr(flag.size() + 1);
    return true;
  }
  if (arg == flag && *i + 1 < argc) {
    *value = argv[++*i];
    return true;
  }
  return false;
}

bool ParseIntValue(const std::string& value, int* out) {
  uint64_t parsed = 0;
  if (!ParseUint64Text(value, &parsed) || parsed > 1000000) return false;
  *out = static_cast<int>(parsed);
  return true;
}

bool ParseArgs(int argc, char** argv, Args* args, std::string* error) {
  if (argc < 2) {
    *error = "missing command";
    return false;
  }
  args->command = argv[1];
  std::string value;
  for (int i = 2; i < argc; ++i) {
    if (ParseFlag(argc, argv, &i, "dataset", &args->dataset)) continue;
    if (ParseFlag(argc, argv, &i, "method", &args->method)) continue;
    if (ParseFlag(argc, argv, &i, "detector", &args->detector)) continue;
    if (ParseFlag(argc, argv, &i, "out", &args->out_dir)) continue;
    if (ParseFlag(argc, argv, &i, "in", &args->in_dir)) continue;
    if (ParseFlag(argc, argv, &i, "json", &args->json_path)) continue;
    if (ParseFlag(argc, argv, &i, "seed", &value)) {
      if (!ParseUint64Text(value, &args->seed)) {
        *error = "--seed: cannot parse '" + value + "'";
        return false;
      }
      args->seed_set = true;
      continue;
    }
    if (ParseFlag(argc, argv, &i, "data-seed", &value)) {
      if (!ParseUint64Text(value, &args->data_seed)) {
        *error = "--data-seed: cannot parse '" + value + "'";
        return false;
      }
      continue;
    }
    if (ParseFlag(argc, argv, &i, "scale", &value)) {
      if (!ParseDoubleText(value, &args->scale) || args->scale <= 0.0) {
        *error = "--scale: cannot parse '" + value + "'";
        return false;
      }
      continue;
    }
    if (ParseFlag(argc, argv, &i, "attr-dim", &value)) {
      if (!ParseIntValue(value, &args->attr_dim)) {
        *error = "--attr-dim: cannot parse '" + value + "'";
        return false;
      }
      continue;
    }
    if (ParseFlag(argc, argv, &i, "threads", &value)) {
      if (!ParseIntValue(value, &args->threads) || args->threads < 1 ||
          args->threads > 4096) {
        *error = "--threads: expected an integer in [1, 4096], got '" +
                 value + "'";
        return false;
      }
      continue;
    }
    if (ParseFlag(argc, argv, &i, "timeout", &value)) {
      if (!ParseDoubleText(value, &args->timeout) || args->timeout <= 0.0) {
        *error = "--timeout: expected a positive number of seconds, got '" +
                 value + "'";
        return false;
      }
      continue;
    }
    if (ParseFlag(argc, argv, &i, "inject", &args->inject)) continue;
    if (std::string(argv[i]) == "--quiet") {
      args->quiet = true;
      continue;
    }
    if (std::string(argv[i]) == "--profile") {
      args->profile = true;
      continue;
    }
    if (ParseFlag(argc, argv, &i, "set", &value)) {
      args->overrides.push_back(value);
      continue;
    }
    if (ParseFlag(argc, argv, &i, "socket", &args->socket_path)) continue;
    if (ParseFlag(argc, argv, &i, "metrics-out", &args->metrics_out)) continue;
    if (ParseFlag(argc, argv, &i, "state-dir", &args->state_dir)) continue;
    if (ParseFlag(argc, argv, &i, "max-queue", &value)) {
      if (!ParseIntValue(value, &args->max_queue) || args->max_queue < 1) {
        *error = "--max-queue: expected a positive integer, got '" + value +
                 "'";
        return false;
      }
      continue;
    }
    if (ParseFlag(argc, argv, &i, "wait", &value)) {
      if (!ParseDoubleText(value, &args->wait) || args->wait <= 0.0) {
        *error = "--wait: expected a positive number of seconds, got '" +
                 value + "'";
        return false;
      }
      continue;
    }
    if (argv[i][0] != '-') {
      // Positional operands: `grgad query` request lines (rejected by every
      // other command in Main).
      args->requests.push_back(argv[i]);
      continue;
    }
    *error = std::string("unknown flag: ") + argv[i];
    return false;
  }
  return true;
}

void PrintUsage() {
  std::printf(
      "grgad — topology-pattern-enhanced group-level graph anomaly "
      "detection\n\n"
      "usage:\n"
      "  grgad list\n"
      "      Print available datasets, methods (+ option keys), and "
      "detectors.\n"
      "  grgad run --dataset=NAME [--method=tp-grgad] [--detector=ecod]\n"
      "            [--seed=42] [--set key=value ...] [--out DIR]\n"
      "            [--json PATH] [--data-seed=42] [--scale=1.0]\n"
      "            [--attr-dim=0] [--threads=N] [--timeout=SECONDS]\n"
      "            [--inject SPEC] [--quiet] [--profile]\n"
      "      Run a method end to end; --out persists the pipeline "
      "artifacts.\n"
      "  grgad rescore --in DIR --detector=KIND [--seed=42] [--out DIR]\n"
      "                [--json PATH] [--threads=N] [--timeout=SECONDS]\n"
      "                [--quiet] [--profile]\n"
      "      Re-score saved artifacts with a different detector — no "
      "re-training.\n"
      "  grgad serve --dataset=NAME [--in DIR] [--socket PATH]\n"
      "              [--detector=ecod] [--seed=42] [--set key=value ...]\n"
      "              [--max-queue=64] [--timeout=SECONDS]\n"
      "              [--metrics-out PATH] [--state-dir DIR] [--threads=N]\n"
      "              [--quiet]\n"
      "      Resident daemon over newline-delimited JSON. Loads the "
      "dataset\n"
      "      once, loads --in artifacts (or trains them), prewarms "
      "workspace\n"
      "      pools (--set serve.prewarm_workspaces=N), then batches\n"
      "      anchor-score / rescore / what-if / stats / shutdown plus the\n"
      "      live-mutation ops add-edge / remove-edge / refresh / compact\n"
      "      (dirty-anchor incremental refresh over a mutable CSR).\n"
      "      --socket listens on a unix socket (accepting one client after\n"
      "      another); without it the session runs on stdin/stdout. "
      "--timeout\n"
      "      is the default per-request deadline; SIGTERM drains and exits "
      "0.\n"
      "      --state-dir DIR makes the daemon durable: every applied "
      "mutation\n"
      "      is written to a checksummed write-ahead log before it is "
      "acked\n"
      "      (fsync batching via --set serve.wal_sync_every=N), snapshots\n"
      "      compact the log (--set serve.snapshot_every_mutations=N, plus\n"
      "      the explicit sync/snapshot ops), and a restart — even after\n"
      "      kill -9 — replays the WAL tail and resumes bitwise-identical.\n"
      "  grgad query --socket PATH [--wait 15] [--timeout SECONDS]\n"
      "              'JSON' ['JSON' ...]\n"
      "      Client for serve: retries the connect with seeded backoff "
      "until\n"
      "      the daemon accepts or the window (--timeout, else --wait)\n"
      "      expires — exit 124 on expiry — then sends each request line "
      "and\n"
      "      prints one response line per request.\n\n"
      "--timeout=SECONDS arms a run deadline polled at every stage\n"
      "boundary, training epoch, and anchor chunk; an expired deadline\n"
      "unwinds cleanly and exits with code 124 (timeout(1) convention).\n"
      "--inject SPEC enables the deterministic fault-injection harness\n"
      "(same syntax as the GRGAD_FAULTS environment variable, e.g.\n"
      "'seed=7,rate=0.02' or 'seed=7,artifact/write=1.0').\n"
      "--profile adds fine-grained sub-stage wall times (e.g. the\n"
      "candidate stage's candidates/search|components|select phases, the\n"
      "scoring stage's neighbor-index build vs detector time) to the JSON\n"
      "result's stage_timings.\n"
      "--threads=N sets the worker-pool parallelism degree explicitly\n"
      "(equivalent to the GRGAD_THREADS environment variable, which it\n"
      "overrides); results are bitwise identical at any degree.\n"
      "Ctrl-C or SIGTERM cancels a running pipeline cooperatively (exit\n"
      "code 130).\n");
}

int CmdList() {
  std::printf("datasets:\n");
  for (const std::string& name : ListDatasets()) {
    std::printf("  %s\n", name.c_str());
  }
  std::printf("\nmethods (configure with --set key=value):\n");
  for (const std::string& name : ListMethods()) {
    std::printf("  %s\n", name.c_str());
    auto keys = MethodOptionKeys(name);
    if (keys.ok()) {
      std::string line = "    ";
      for (const std::string& key : keys.value()) {
        if (line.size() + key.size() > 78) {
          std::printf("%s\n", line.c_str());
          line = "    ";
        }
        line += key + " ";
      }
      std::printf("%s\n", line.c_str());
    }
  }
  std::printf("\ndetectors (--detector=...):\n");
  for (DetectorKind kind : AllDetectorKinds()) {
    std::printf("  %s\n", DetectorKindName(kind));
  }
  return 0;
}

/// Renders { "nodes": [...], "score": s } rows for the top `limit` groups.
std::string TopGroupsJson(std::vector<ScoredGroup> groups, size_t limit) {
  std::stable_sort(groups.begin(), groups.end(),
                   [](const ScoredGroup& a, const ScoredGroup& b) {
                     return a.score > b.score;
                   });
  std::string out = "[";
  for (size_t i = 0; i < groups.size() && i < limit; ++i) {
    if (i) out += ", ";
    out += "{\"score\": " + JsonNumber(groups[i].score) + ", \"nodes\": [";
    for (size_t k = 0; k < groups[i].nodes.size(); ++k) {
      if (k) out += ", ";
      out += std::to_string(groups[i].nodes[k]);
    }
    out += "]}";
  }
  out += "]";
  return out;
}

std::string TimingsJson(const RunContext& ctx) {
  std::string out = "[";
  bool first_timing = true;
  for (const StageTiming& t : ctx.stage_timings()) {
    if (!first_timing) out += ", ";
    first_timing = false;
    out += "{\"stage\": " + JsonString(t.stage) +
           ", \"seconds\": " + JsonNumber(t.seconds) + "}";
  }
  out += "]";
  return out;
}

std::string EvaluationJson(const GroupEvaluation& eval) {
  std::string out = "{";
  bool first = true;
  JsonField(&out, "cr", JsonNumber(eval.cr), &first);
  JsonField(&out, "f1", JsonNumber(eval.f1), &first);
  JsonField(&out, "auc", JsonNumber(eval.auc), &first);
  JsonField(&out, "avg_predicted_size", JsonNumber(eval.avg_predicted_size),
            &first);
  JsonField(&out, "num_candidates", std::to_string(eval.num_candidates),
            &first);
  JsonField(&out, "num_predicted_anomalous",
            std::to_string(eval.num_predicted_anomalous), &first);
  out += "}";
  return out;
}

int EmitJson(const Args& args, const std::string& json) {
  if (args.json_path.empty() || args.json_path == "-") {
    std::printf("%s\n", json.c_str());
    return 0;
  }
  std::ofstream out(args.json_path, std::ios::trunc);
  out << json << "\n";
  if (!out.flush()) {
    std::fprintf(stderr, "error: cannot write %s\n", args.json_path.c_str());
    return 1;
  }
  if (!args.quiet) std::printf("wrote %s\n", args.json_path.c_str());
  return 0;
}

int ExitCodeFor(const Status& status) {
  switch (status.code()) {
    case StatusCode::kDeadlineExceeded: return 124;  // timeout(1) convention.
    case StatusCode::kCancelled: return 130;         // 128 + SIGINT.
    default: return 1;
  }
}

/// Reports a failed command: stderr always; with --json also a machine-
/// readable error object so callers never have to parse stderr.
int FailWith(const Args& args, const char* command, const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  if (!args.json_path.empty()) {
    std::string json = "{";
    bool first = true;
    JsonField(&json, "command", JsonString(command), &first);
    JsonField(&json, "status", JsonString(StatusCodeName(status.code())),
              &first);
    JsonField(&json, "error", JsonString(status.message()), &first);
    json += "}";
    EmitJson(args, json);
  }
  return ExitCodeFor(status);
}

int CmdRun(const Args& args) {
  if (args.dataset.empty()) {
    std::fprintf(stderr, "error: run requires --dataset=NAME\n");
    return 2;
  }
  DatasetOptions data_options;
  data_options.seed = args.data_seed;
  data_options.scale = args.scale;
  data_options.attr_dim = args.attr_dim;
  // Transient loader failures (kIoError) retry with capped backoff;
  // anything else surfaces immediately.
  Retryer dataset_retryer{RetryPolicy{}};
  auto dataset = dataset_retryer.RunResult<Dataset>(
      [&] { return MakeDataset(args.dataset, data_options); });
  if (!dataset.ok()) return FailWith(args, "run", dataset.status());
  const Dataset& d = dataset.value();
  if (!args.quiet) {
    std::fprintf(stderr, "dataset %s: %d nodes / %d edges / %zu-d attrs\n",
                 args.dataset.c_str(), d.graph.num_nodes(),
                 d.graph.num_edges(), d.graph.attr_dim());
  }

  MethodOptions method_options;
  method_options.seed = args.seed;
  method_options.overrides = args.overrides;
  if (!args.detector.empty()) {
    // --detector is sugar for --set detector=... (tp-grgad only).
    method_options.overrides.push_back("detector=" + args.detector);
  }

  RunContext ctx;
  ctx.profile = args.profile;
  if (args.timeout > 0.0) ctx.SetDeadlineAfter(args.timeout);
  if (!args.quiet) {
    ctx.on_progress = [](const StageEvent& event) {
      if (event.finished) {
        std::fprintf(stderr, "stage %-10s done in %.2fs\n",
                     event.stage.c_str(), event.seconds);
      } else {
        std::fprintf(stderr, "stage %-10s ...\n", event.stage.c_str());
      }
    };
  }

  PipelineArtifacts artifacts;
  std::vector<ScoredGroup> scored;
  Timer total_timer;
  if (args.method == "tp-grgad") {
    auto options = BuildTpGrGadOptions(args.seed, method_options.overrides);
    if (!options.ok()) return FailWith(args, "run", options.status());
    // Only the stage pipeline polls the stop token; the baseline methods
    // below keep the default SIGINT/SIGTERM disposition (terminate) instead
    // of a handler that would silently eat the signal.
    *GlobalCancelToken() = ctx.cancel_token();
    HookStopSignals(true);
    auto result = TpGrGad(options.value()).TryRun(d.graph, &ctx);
    HookStopSignals(false);  // Nothing polls the token past here.
    if (!result.ok()) return FailWith(args, "run", result.status());
    artifacts = std::move(result).value();
    scored = artifacts.scored_groups;
  } else {
    if (!args.detector.empty()) {
      std::fprintf(stderr,
                   "error: --detector only applies to --method=tp-grgad\n");
      return 2;
    }
    auto method = MakeGroupDetector(args.method, method_options);
    if (!method.ok()) return FailWith(args, "run", method.status());
    scored = method.value()->DetectGroups(d.graph);
    artifacts.seed = args.seed;
    artifacts.scored_groups = scored;
    for (const ScoredGroup& sg : scored) {
      artifacts.candidate_groups.push_back(sg.nodes);
      artifacts.group_scores.push_back(sg.score);
    }
  }
  const double total_seconds = total_timer.ElapsedSeconds();

  if (!args.out_dir.empty()) {
    Retryer save_retryer{RetryPolicy{}};
    const Status saved = save_retryer.Run(
        [&] { return SaveArtifacts(artifacts, args.out_dir); });
    if (!saved.ok()) return FailWith(args, "run", saved);
    if (!args.quiet) {
      std::fprintf(stderr, "artifacts -> %s\n", args.out_dir.c_str());
    }
  }

  const GroupEvaluation eval = EvaluateGroups(d, scored);
  std::string json = "{";
  bool first = true;
  JsonField(&json, "command", JsonString("run"), &first);
  JsonField(&json, "status", JsonString("ok"), &first);
  JsonField(&json, "dataset", JsonString(args.dataset), &first);
  JsonField(&json, "method", JsonString(args.method), &first);
  JsonField(&json, "seed", std::to_string(args.seed), &first);
  JsonField(&json, "num_anchors", std::to_string(artifacts.anchors.size()),
            &first);
  JsonField(&json, "num_groups",
            std::to_string(artifacts.candidate_groups.size()), &first);
  JsonField(&json, "seconds", JsonNumber(total_seconds), &first);
  JsonField(&json, "profile", args.profile ? "true" : "false", &first);
  JsonField(&json, "stage_timings", TimingsJson(ctx), &first);
  JsonField(&json, "evaluation", EvaluationJson(eval), &first);
  JsonField(&json, "top_groups", TopGroupsJson(scored, 5), &first);
  json += "}";
  return EmitJson(args, json);
}

int CmdRescore(const Args& args) {
  if (args.in_dir.empty() || args.detector.empty()) {
    std::fprintf(stderr,
                 "error: rescore requires --in=DIR and --detector=KIND\n");
    return 2;
  }
  DetectorKind kind;
  if (!ParseDetectorKind(args.detector, &kind)) {
    std::fprintf(stderr, "error: unknown detector '%s'\n",
                 args.detector.c_str());
    return 2;
  }
  // Transient read failures retry; corruption (kDataLoss) surfaces
  // immediately. NotFound also retries (ArtifactLoadRetryable): a writer
  // committing a concurrent save renames the directory away for an instant,
  // and treating that blip as fatal made rescore flaky next to a running
  // `grgad run --out` on the same directory.
  Retryer load_retryer{RetryPolicy{}};
  load_retryer.set_retryable(ArtifactLoadRetryable);
  auto loaded = load_retryer.RunResult<PipelineArtifacts>(
      [&] { return LoadArtifacts(args.in_dir); });
  if (!loaded.ok()) return FailWith(args, "rescore", loaded.status());
  PipelineArtifacts artifacts = std::move(loaded).value();
  // Default to the seed recorded at run time so detector seeding matches a
  // full run with this detector bit-for-bit; --seed overrides.
  const uint64_t seed = args.seed_set ? args.seed : artifacts.seed;

  RunContext ctx;
  ctx.profile = args.profile;
  if (args.timeout > 0.0) ctx.SetDeadlineAfter(args.timeout);
  *GlobalCancelToken() = ctx.cancel_token();
  HookStopSignals(true);
  auto rescored = RescoreArtifacts(artifacts, kind, seed, &ctx);
  HookStopSignals(false);
  if (!rescored.ok()) return FailWith(args, "rescore", rescored.status());
  artifacts.seed = seed;  // Keep a --out manifest true to these scores.
  artifacts.group_scores = rescored.value().scores;
  artifacts.scored_groups = rescored.value().scored_groups;

  if (!args.out_dir.empty()) {
    Retryer save_retryer{RetryPolicy{}};
    const Status saved = save_retryer.Run(
        [&] { return SaveArtifacts(artifacts, args.out_dir); });
    if (!saved.ok()) return FailWith(args, "rescore", saved);
    if (!args.quiet) {
      std::fprintf(stderr, "artifacts -> %s\n", args.out_dir.c_str());
    }
  }

  std::string json = "{";
  bool first = true;
  JsonField(&json, "command", JsonString("rescore"), &first);
  JsonField(&json, "status", JsonString("ok"), &first);
  JsonField(&json, "in", JsonString(args.in_dir), &first);
  JsonField(&json, "detector", JsonString(args.detector), &first);
  JsonField(&json, "num_groups",
            std::to_string(artifacts.candidate_groups.size()), &first);
  JsonField(&json, "profile", args.profile ? "true" : "false", &first);
  JsonField(&json, "stage_timings", TimingsJson(ctx), &first);
  JsonField(&json, "top_groups", TopGroupsJson(artifacts.scored_groups, 5),
            &first);
  json += "}";
  return EmitJson(args, json);
}

int CmdServe(const Args& args) {
  if (args.dataset.empty()) {
    std::fprintf(stderr, "error: serve requires --dataset=NAME\n");
    return 2;
  }
  // A client that disconnects mid-response must surface as a write error on
  // that response, never kill the daemon.
  std::signal(SIGPIPE, SIG_IGN);

  DatasetOptions data_options;
  data_options.seed = args.data_seed;
  data_options.scale = args.scale;
  data_options.attr_dim = args.attr_dim;
  Retryer dataset_retryer{RetryPolicy{}};
  auto dataset = dataset_retryer.RunResult<Dataset>(
      [&] { return MakeDataset(args.dataset, data_options); });
  if (!dataset.ok()) return FailWith(args, "serve", dataset.status());
  const Dataset& d = dataset.value();

  std::vector<std::string> overrides = args.overrides;
  if (!args.detector.empty()) {
    overrides.push_back("detector=" + args.detector);
  }
  auto options = BuildTpGrGadOptions(args.seed, overrides);
  if (!options.ok()) return FailWith(args, "serve", options.status());

  // Startup stop plumbing: a SIGTERM during the (possibly long) initial
  // training unwinds exactly like `grgad run` — cooperatively, exit 130.
  RunContext startup_ctx;
  *GlobalCancelToken() = startup_ctx.cancel_token();
  HookStopSignals(true);

  // Durable restart: a committed snapshot under --state-dir supersedes both
  // --in and training — the daemon resumes from the mutated graph + resident
  // artifacts it last persisted (plus the WAL tail, replayed after
  // construction). `snapshot` must outlive `daemon`, which borrows its graph.
  std::unique_ptr<LoadedServeSnapshot> snapshot;
  if (!args.state_dir.empty()) {
    auto loaded = LoadServeSnapshot(args.state_dir);
    if (loaded.ok()) {
      snapshot =
          std::make_unique<LoadedServeSnapshot>(std::move(loaded).value());
      if (!args.quiet) {
        std::fprintf(stderr,
                     "serve: recovered snapshot <- %s (wal_seq=%llu, %zu "
                     "groups)\n",
                     args.state_dir.c_str(),
                     static_cast<unsigned long long>(snapshot->wal_seq),
                     snapshot->artifacts.candidate_groups.size());
      }
    } else if (loaded.status().code() != StatusCode::kNotFound) {
      // A torn or corrupt snapshot is typed DataLoss — refuse to serve from
      // it rather than silently retraining over surviving durable state.
      HookStopSignals(false);
      return FailWith(args, "serve", loaded.status());
    }
  }

  PipelineArtifacts artifacts;
  if (snapshot != nullptr) {
    artifacts = std::move(snapshot->artifacts);
  } else if (!args.in_dir.empty()) {
    Retryer load_retryer{RetryPolicy{}};
    load_retryer.set_retryable(ArtifactLoadRetryable);
    auto loaded = load_retryer.RunResult<PipelineArtifacts>(
        [&] { return LoadArtifacts(args.in_dir); });
    if (!loaded.ok()) {
      HookStopSignals(false);
      return FailWith(args, "serve", loaded.status());
    }
    artifacts = std::move(loaded).value();
    if (!args.quiet) {
      std::fprintf(stderr, "serve: artifacts <- %s (%zu groups)\n",
                   args.in_dir.c_str(), artifacts.candidate_groups.size());
    }
  } else {
    if (!args.quiet) {
      std::fprintf(stderr, "serve: training resident artifacts...\n");
    }
    auto trained = RunPipeline(d.graph, options.value(), &startup_ctx);
    if (!trained.ok()) {
      HookStopSignals(false);
      return FailWith(args, "serve", trained.status());
    }
    artifacts = std::move(trained).value();
  }

  ServeOptions serve_options;
  serve_options.pipeline = options.value();
  serve_options.max_queue = static_cast<size_t>(args.max_queue);
  serve_options.default_timeout_seconds = args.timeout;
  serve_options.state_dir = args.state_dir;
  ServeDaemon daemon(snapshot != nullptr ? snapshot->graph : d.graph,
                     std::move(artifacts), serve_options);
  if (!args.state_dir.empty()) {
    // Opens (or creates) the WAL, replays the unsnapshotted tail through the
    // live mutation path, and truncates any torn record. Failures here are
    // startup failures: serving non-durably when durability was requested
    // would break the crash-recovery contract silently.
    const Status durable = daemon.EnableDurability(snapshot.get());
    if (!durable.ok()) {
      HookStopSignals(false);
      return FailWith(args, "serve", durable);
    }
  }
  daemon.Prewarm();

  // The serving stop token is fresh: SIGTERM from here on means "drain and
  // exit 0", not "unwind with kCancelled".
  CancelToken stop;
  *GlobalCancelToken() = stop;

  if (!args.socket_path.empty()) {
    auto server = UnixServerSocket::Listen(args.socket_path);
    if (!server.ok()) {
      HookStopSignals(false);
      return FailWith(args, "serve", server.status());
    }
    if (!args.quiet) {
      std::fprintf(stderr, "serve: listening on %s\n",
                   args.socket_path.c_str());
    }
    while (!stop.stop_requested() && !daemon.shutdown_requested()) {
      auto client = server.value().Accept(&stop);
      if (!client.ok()) {
        HookStopSignals(false);
        return FailWith(args, "serve", client.status());
      }
      if (client.value() < 0) break;  // Stop fired while waiting.
      LineChannel channel(client.value(), client.value(), /*own_fds=*/true);
      const Status session = daemon.Serve(&channel, stop);
      if (!session.ok() && !args.quiet) {
        std::fprintf(stderr, "serve: session ended: %s\n",
                     session.ToString().c_str());
      }
    }
  } else {
    LineChannel channel(STDIN_FILENO, STDOUT_FILENO, /*own_fds=*/false);
    const Status session = daemon.Serve(&channel, stop);
    if (!session.ok()) {
      HookStopSignals(false);
      return FailWith(args, "serve", session);
    }
  }
  HookStopSignals(false);

  if (!args.state_dir.empty()) {
    // Fold the drained WAL into a final snapshot so the next start replays
    // nothing. Best-effort: the WAL already covers everything acked.
    const Status final_snapshot = daemon.SnapshotNow();
    if (!final_snapshot.ok() && !args.quiet) {
      std::fprintf(stderr, "serve: final snapshot failed: %s\n",
                   final_snapshot.ToString().c_str());
    }
  }

  if (!args.metrics_out.empty()) {
    std::ofstream out(args.metrics_out, std::ios::trunc);
    out << daemon.MetricsJson() << "\n";
    if (!out.flush()) {
      std::fprintf(stderr, "error: cannot write %s\n",
                   args.metrics_out.c_str());
      return 1;
    }
    if (!args.quiet) {
      std::fprintf(stderr, "serve: metrics -> %s\n", args.metrics_out.c_str());
    }
  }
  if (!args.quiet) std::fprintf(stderr, "serve: drained, exiting\n");
  return 0;  // Graceful drain — including SIGTERM — is success.
}

int CmdQuery(const Args& args) {
  if (args.socket_path.empty() || args.requests.empty()) {
    std::fprintf(stderr,
                 "error: query requires --socket PATH and at least one "
                 "positional JSON request\n");
    return 2;
  }
  // Connect window: --timeout (when set) wins over the legacy --wait
  // default, so `grgad query --timeout 3` behaves like every other CLI
  // deadline. ConnectUnixSocket already polls a not-yet-listening socket;
  // the seeded Retryer on top rides out transient connect errors (a stale
  // socket file from a crashed daemon, injected faults) with the same
  // deterministic backoff as every other retried I/O path. Expiry is always
  // typed kDeadlineExceeded — exit 124, never a raw connect error.
  const double window = args.timeout > 0.0 ? args.timeout : args.wait;
  Timer connect_timer;
  Retryer connect_retryer{RetryPolicy{}};
  connect_retryer.set_retryable([&](const Status& status) {
    return DefaultRetryable(status) && connect_timer.ElapsedSeconds() < window;
  });
  auto fd = connect_retryer.RunResult<int>([&]() -> Result<int> {
    const double remaining = window - connect_timer.ElapsedSeconds();
    if (remaining <= 0.0) {
      return Status::DeadlineExceeded("daemon connect window expired");
    }
    return ConnectUnixSocket(args.socket_path, remaining);
  });
  if (!fd.ok()) {
    Status status = fd.status();
    if (status.code() != StatusCode::kDeadlineExceeded &&
        connect_timer.ElapsedSeconds() >= window) {
      status = Status::DeadlineExceeded(
          "daemon did not accept " + args.socket_path + " within " +
          JsonNumber(window) + "s: " + status.ToString());
    }
    return FailWith(args, "query", status);
  }
  LineChannel channel(fd.value(), fd.value(), /*own_fds=*/true);
  for (const std::string& request : args.requests) {
    const Status written = channel.WriteLine(request);
    if (!written.ok()) return FailWith(args, "query", written);
  }
  // The daemon answers in admission order, one line per request.
  for (size_t i = 0; i < args.requests.size(); ++i) {
    std::string line;
    bool eof = false;
    const Status read = channel.ReadLine(&line, &eof);
    if (!read.ok()) return FailWith(args, "query", read);
    if (eof) {
      return FailWith(args, "query",
                      Status::IoError("daemon closed the connection after " +
                                      std::to_string(i) + " of " +
                                      std::to_string(args.requests.size()) +
                                      " responses"));
    }
    std::printf("%s\n", line.c_str());
  }
  return 0;
}

int Main(int argc, char** argv) {
  Args args;
  std::string error;
  if (!ParseArgs(argc, argv, &args, &error)) {
    std::fprintf(stderr, "error: %s\n\n", error.c_str());
    PrintUsage();
    return 2;
  }
  if (args.threads > 0) SetParallelismDegree(args.threads);
  if (!args.inject.empty()) {
    const Status configured = FaultInjector::Global().Configure(args.inject);
    if (!configured.ok()) {
      std::fprintf(stderr, "error: --inject: %s\n",
                   configured.ToString().c_str());
      return 2;
    }
  }
  if (args.command != "query" && !args.requests.empty()) {
    std::fprintf(stderr, "error: unexpected operand '%s'\n\n",
                 args.requests.front().c_str());
    PrintUsage();
    return 2;
  }
  if (args.command == "list") return CmdList();
  if (args.command == "run") return CmdRun(args);
  if (args.command == "rescore") return CmdRescore(args);
  if (args.command == "serve") return CmdServe(args);
  if (args.command == "query") return CmdQuery(args);
  if (args.command == "help" || args.command == "--help") {
    PrintUsage();
    return 0;
  }
  std::fprintf(stderr, "error: unknown command '%s'\n\n",
               args.command.c_str());
  PrintUsage();
  return 2;
}

}  // namespace
}  // namespace grgad

int main(int argc, char** argv) { return grgad::Main(argc, argv); }
