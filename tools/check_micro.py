#!/usr/bin/env python3
"""CI gate over bench_results/micro.json (grgad-micro-v3).

Fails (exit 1) when:
  - the schema is not grgad-micro-v3, or the kernels/scoring/epochs tables
    are missing or empty;
  - the scoring table lacks any of the required seed-vs-opt entries
    (pairwise, knn, lof, iforest, ecod, graphsnn);
  - any scoring entry's optimized path regresses more than REGRESSION_LIMIT
    (1.5x) against its frozen seed baseline on the runner.

The kernels/epochs tables are checked for presence only: their acceptable
ratios are ISA-dependent (see PERF.md) and already tracked as uploaded
artifacts, while the scoring table is the gate this stage's rebuild owns.
"""
import json
import sys

REGRESSION_LIMIT = 1.5
REQUIRED_SCORING = {"pairwise", "knn", "lof", "iforest", "ecod", "graphsnn"}


def main() -> int:
    path = sys.argv[1] if len(sys.argv) > 1 else "bench_results/micro.json"
    with open(path) as f:
        data = json.load(f)

    failures = []
    schema = data.get("schema")
    if schema != "grgad-micro-v3":
        failures.append(f"schema is {schema!r}, expected 'grgad-micro-v3'")

    for table in ("kernels", "scoring", "epochs"):
        if not data.get(table):
            failures.append(f"table {table!r} is missing or empty")

    scoring = data.get("scoring") or []
    names = {entry.get("name") for entry in scoring}
    for missing in sorted(REQUIRED_SCORING - names):
        failures.append(f"scoring table is missing entry {missing!r}")

    floor = 1.0 / REGRESSION_LIMIT
    for entry in scoring:
        name = entry.get("name", "?")
        speedup = entry.get("speedup")
        if not isinstance(speedup, (int, float)):
            failures.append(f"scoring entry {name!r} has no speedup")
            continue
        print(f"  scoring {name:<10} seed {entry.get('seed_ms', 0.0):9.3f} ms"
              f"   opt {entry.get('opt_ms', 0.0):9.3f} ms"
              f"   {speedup:.2f}x")
        if speedup < floor:
            failures.append(
                f"scoring entry {name!r} regressed: opt is {1.0 / speedup:.2f}x"
                f" slower than seed (limit {REGRESSION_LIMIT}x)")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print(f"OK: {path} is grgad-micro-v3 with a complete scoring table and "
          f"no opt regression beyond {REGRESSION_LIMIT}x")
    return 0


if __name__ == "__main__":
    sys.exit(main())
