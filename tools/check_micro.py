#!/usr/bin/env python3
"""CI gate over bench_results/micro.json (grgad-micro-v7).

Fails (exit 1) when:
  - the schema is not grgad-micro-v7, or the candidates/kernels/scoring/
    epochs/serve/mutations tables are missing or empty;
  - the candidates table lacks any of the required seed-vs-opt entries
    (sampler, pattern_search, augment), or the sampler entry reports a
    nonzero steady-state workspace heap-allocation count;
  - the scoring table lacks any of the required seed-vs-opt entries
    (pairwise, knn, lof, iforest, ecod, graphsnn);
  - the serve table lacks a round_trip entry with a positive mean_ms
    (the resident daemon answered every timed request);
  - the mutations table lacks the apply_edge / invalidate / refresh
    entries, or the refresh entry's incremental path is less than
    REFRESH_SPEEDUP_FLOOR (10x) faster than the full recompute (the PR's
    acceptance gate for dirty-anchor invalidation);
  - the durability table lacks the wal_append / snapshot / replay entries,
    or the replay entry (snapshot load + WAL tail replay, the daemon's
    restart path) is less than REPLAY_SPEEDUP_FLOOR (5x) faster than
    rebuilding the serving state from scratch on the same serving-dense
    shape (the durability PR's acceptance gate);
  - any candidates or scoring entry's optimized path regresses more than
    REGRESSION_LIMIT (1.5x) against its frozen seed baseline on the runner.

The kernels/epochs tables are checked for presence only: their acceptable
ratios are ISA-dependent (see PERF.md) and already tracked as uploaded
artifacts, while the candidates, scoring, and mutations tables are the
gates their stage rebuilds own.
"""
import json
import sys

REGRESSION_LIMIT = 1.5
REFRESH_SPEEDUP_FLOOR = 10.0
REPLAY_SPEEDUP_FLOOR = 5.0
REQUIRED_CANDIDATES = {"sampler", "pattern_search", "augment"}
REQUIRED_SCORING = {"pairwise", "knn", "lof", "iforest", "ecod", "graphsnn"}
REQUIRED_MUTATIONS = {"apply_edge", "invalidate", "refresh"}
REQUIRED_DURABILITY = {"wal_append", "snapshot", "replay"}


def check_gated_table(data, table, required, failures):
    entries = data.get(table) or []
    names = {entry.get("name") for entry in entries}
    for missing in sorted(required - names):
        failures.append(f"{table} table is missing entry {missing!r}")

    floor = 1.0 / REGRESSION_LIMIT
    for entry in entries:
        name = entry.get("name", "?")
        speedup = entry.get("speedup")
        if not isinstance(speedup, (int, float)):
            failures.append(f"{table} entry {name!r} has no speedup")
            continue
        print(f"  {table} {name:<15} seed {entry.get('seed_ms', 0.0):9.3f} ms"
              f"   opt {entry.get('opt_ms', 0.0):9.3f} ms"
              f"   {speedup:.2f}x")
        if speedup < floor:
            failures.append(
                f"{table} entry {name!r} regressed: opt is"
                f" {1.0 / speedup:.2f}x slower than seed"
                f" (limit {REGRESSION_LIMIT}x)")


def check_mutations(data, failures):
    entries = {entry.get("name"): entry for entry in data.get("mutations") or []}
    for missing in sorted(REQUIRED_MUTATIONS - set(entries)):
        failures.append(f"mutations table is missing entry {missing!r}")

    for name, entry in entries.items():
        opt_ms = entry.get("opt_ms")
        if not isinstance(opt_ms, (int, float)) or opt_ms <= 0:
            failures.append(
                f"mutations entry {name!r} opt_ms = {opt_ms!r}, expected > 0")
            continue
        line = f"  mutations {name:<12} opt {opt_ms:9.3f} ms"
        if isinstance(entry.get("speedup"), (int, float)):
            line += (f"   seed {entry.get('seed_ms', 0.0):9.3f} ms"
                     f"   {entry['speedup']:.2f}x")
        if isinstance(entry.get("fanout"), (int, float)):
            line += f"   fanout {entry['fanout']:.1f}"
        print(line)

    refresh = entries.get("refresh")
    if refresh is not None:
        speedup = refresh.get("speedup")
        if not isinstance(speedup, (int, float)):
            failures.append("mutations refresh entry has no speedup")
        elif speedup < REFRESH_SPEEDUP_FLOOR:
            failures.append(
                f"incremental refresh speedup {speedup:.2f}x is below the"
                f" {REFRESH_SPEEDUP_FLOOR}x acceptance floor")
        fanout = refresh.get("fanout")
        if not isinstance(fanout, (int, float)) or fanout <= 0:
            failures.append(
                f"mutations refresh fanout = {fanout!r}, expected > 0"
                f" (the mutation must dirty at least one anchor)")


def check_durability(data, failures):
    entries = {entry.get("name"): entry
               for entry in data.get("durability") or []}
    for missing in sorted(REQUIRED_DURABILITY - set(entries)):
        failures.append(f"durability table is missing entry {missing!r}")

    for name, entry in entries.items():
        opt_ms = entry.get("opt_ms")
        if not isinstance(opt_ms, (int, float)) or opt_ms <= 0:
            failures.append(
                f"durability entry {name!r} opt_ms = {opt_ms!r}, expected > 0")
            continue
        line = f"  durability {name:<11} opt {opt_ms:9.3f} ms"
        if isinstance(entry.get("speedup"), (int, float)):
            line += (f"   seed {entry.get('seed_ms', 0.0):9.3f} ms"
                     f"   {entry['speedup']:.2f}x")
        print(line)

    replay = entries.get("replay")
    if replay is not None:
        speedup = replay.get("speedup")
        if not isinstance(speedup, (int, float)):
            failures.append("durability replay entry has no speedup")
        elif speedup < REPLAY_SPEEDUP_FLOOR:
            failures.append(
                f"crash-recovery replay speedup {speedup:.2f}x is below the"
                f" {REPLAY_SPEEDUP_FLOOR}x acceptance floor (restart must"
                f" beat a from-scratch rebuild)")


def main() -> int:
    path = sys.argv[1] if len(sys.argv) > 1 else "bench_results/micro.json"
    with open(path) as f:
        data = json.load(f)

    failures = []
    schema = data.get("schema")
    if schema != "grgad-micro-v7":
        failures.append(f"schema is {schema!r}, expected 'grgad-micro-v7'")

    for table in ("candidates", "kernels", "scoring", "epochs", "serve",
                  "mutations", "durability"):
        if not data.get(table):
            failures.append(f"table {table!r} is missing or empty")

    check_gated_table(data, "candidates", REQUIRED_CANDIDATES, failures)
    check_gated_table(data, "scoring", REQUIRED_SCORING, failures)
    check_mutations(data, failures)
    check_durability(data, failures)

    for entry in data.get("candidates") or []:
        if entry.get("name") != "sampler":
            continue
        allocs = (entry.get("workspace") or {}).get("steady_heap_allocs")
        if allocs is None:
            failures.append("sampler entry lacks workspace.steady_heap_allocs")
        elif allocs != 0:
            failures.append(
                f"sampler steady-state workspace heap allocs = {allocs},"
                f" expected 0")

    serve_names = {}
    for entry in data.get("serve") or []:
        serve_names[entry.get("name")] = entry
    round_trip = serve_names.get("round_trip")
    if round_trip is None:
        failures.append("serve table is missing entry 'round_trip'")
    else:
        mean_ms = round_trip.get("mean_ms")
        if not isinstance(mean_ms, (int, float)) or mean_ms <= 0:
            failures.append(
                f"serve round_trip mean_ms = {mean_ms!r}, expected > 0")
        else:
            print(f"  serve round_trip     mean {mean_ms:9.3f} ms over"
                  f" {round_trip.get('round_trips', 0)} trips")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print(f"OK: {path} is grgad-micro-v7 with complete candidates/scoring/"
          f"serve/mutations/durability tables, 0 steady-state sampler workspace "
          f"allocs, incremental refresh >= {REFRESH_SPEEDUP_FLOOR}x, "
          f"crash-recovery replay >= {REPLAY_SPEEDUP_FLOOR}x, and no opt "
          f"regression beyond {REGRESSION_LIMIT}x")
    return 0


if __name__ == "__main__":
    sys.exit(main())
